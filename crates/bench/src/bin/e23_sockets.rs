//! E23 — modeled fabric vs real sockets: latency and message-rate shapes.
//!
//! ```text
//! e23_sockets              # writes results/BENCH_sockets.json
//! e23_sockets --ops 500 --iters 50
//! ```
//!
//! The sockets backend turns the reproduction's model-vs-reality gap into
//! a measurement: the *same* PWC protocol code runs over the LogGP-modeled
//! simulated NIC (latency in virtual nanoseconds) and over real loopback
//! UDP (wall-clock nanoseconds). Absolute numbers are not comparable — one
//! models FDR InfiniBand hardware, the other pays Linux syscalls on
//! loopback — so the artifact records *shapes*:
//!
//! * **latency vs size** — half round trip of a PWC ping-pong; both curves
//!   must grow monotonically with payload size (serialization dominates).
//! * **message rate vs window** — 8-byte windowed puts; both curves must
//!   grow with window depth (latency hiding), the E3 claim.
//!
//! The JSON lands in `results/BENCH_sockets.json` and is uploaded by CI as
//! a non-gating artifact; the `shape` entries make eyeball comparison a
//! grep.

use photon_bench::experiments::drivers;
use photon_core::{BackendKind, Completion, PhotonCluster, PhotonConfig, ProbeFlags};
use photon_fabric::NetworkModel;
use std::fmt::Write as _;
use std::time::Instant;

fn sock_cfg() -> PhotonConfig {
    PhotonConfig { backend: BackendKind::Sock, ..PhotonConfig::default() }
}

/// Wall-clock half-RTT of a PWC ping-pong over the sockets backend.
fn sock_pingpong_ns(size: usize, iters: usize) -> u64 {
    let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), sock_cfg());
    let (p0, p1) = (c.rank(0), c.rank(1));
    let b0 = p0.register_buffer(size.max(8)).unwrap();
    let b1 = p1.register_buffer(size.max(8)).unwrap();
    let d0 = b0.descriptor();
    let d1 = b1.descriptor();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..iters as u64 {
                p0.put_with_completion(1, &b0, 0, size, &d1, 0, i, i).unwrap();
                p0.wait_local(i).unwrap();
                p0.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
            }
        });
        s.spawn(|| {
            for i in 0..iters as u64 {
                p1.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
                p1.put_with_completion(0, &b1, 0, size, &d0, 0, i, i).unwrap();
                p1.wait_local(i).unwrap();
            }
        });
    });
    t0.elapsed().as_nanos() as u64 / (2 * iters as u64)
}

/// `ops` windowed 8-byte puts rank0 -> rank1; returns elapsed time — virtual
/// nanoseconds on the sim backend, wall nanoseconds on sockets.
fn windowed_elapsed_ns(cfg: PhotonConfig, ops: u64, window: usize) -> u64 {
    let sock = cfg.backend == BackendKind::Sock;
    let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), cfg);
    let (p0, p1) = (c.rank(0), c.rank(1));
    let src = p0.register_buffer(64).unwrap();
    let dst = p1.register_buffer(64).unwrap();
    let d = dst.descriptor();
    c.reset_time(); // sim: exclude registration cost from the virtual clock
    let t0 = Instant::now();
    let mut evs: Vec<Completion> = Vec::with_capacity(128);
    let (mut posted, mut done, mut drained) = (0u64, 0u64, 0u64);
    let mut inflight = 0usize;
    while done < ops || drained < ops {
        while inflight < window && posted < ops {
            if p0.try_put_with_completion(1, &src, 0, 8, &d, 0, posted, posted).unwrap() {
                posted += 1;
                inflight += 1;
            } else {
                break;
            }
        }
        evs.clear();
        drained += p1.poll_completions(ProbeFlags::Remote, &mut evs, 64).unwrap() as u64;
        evs.clear();
        let k = p0.poll_completions(ProbeFlags::Local, &mut evs, 128).unwrap();
        done += k as u64;
        inflight -= k;
    }
    if sock {
        t0.elapsed().as_nanos() as u64
    } else {
        p0.now().as_nanos()
    }
}

fn mops(ops: u64, ns: u64) -> f64 {
    if ns == 0 {
        0.0
    } else {
        ops as f64 / ns as f64 * 1000.0
    }
}

fn monotone_up(xs: &[f64], slack: f64) -> bool {
    xs.windows(2).all(|w| w[1] >= w[0] * slack)
}

/// Endpoint trend: does the curve grow overall? Loopback wall clocks are
/// too jittery for point-wise monotonicity, but the first-to-last trend is
/// the actual claim being compared against the model.
fn grows_overall(xs: &[f64]) -> bool {
    match (xs.first(), xs.last()) {
        (Some(a), Some(b)) => *b > *a,
        _ => false,
    }
}

/// Min over `reps` measurements: the run least disturbed by the scheduler.
fn best_of(reps: u32, f: impl Fn() -> u64) -> u64 {
    (0..reps).map(|_| f()).min().expect("reps >= 1")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iters = 50usize;
    let mut ops = 500u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args[i + 1].parse().expect("--iters takes a count");
                i += 2;
            }
            "--ops" => {
                ops = args[i + 1].parse().expect("--ops takes a count");
                i += 2;
            }
            other => {
                eprintln!("unknown arg: {other} (try --iters/--ops)");
                std::process::exit(2);
            }
        }
    }

    // Latency vs size: modeled virtual ns vs real wall ns.
    let sizes = [8usize, 64, 512, 4096, 16384];
    let mut lat: Vec<(usize, u64, u64)> = Vec::new();
    for &size in &sizes {
        let modeled = drivers::photon_pingpong_ns(
            NetworkModel::ib_fdr(),
            PhotonConfig::default(),
            size,
            iters,
        );
        let real = best_of(3, || sock_pingpong_ns(size, iters));
        println!(
            "latency {:>6}B  modeled {:>9} ns  real {:>9} ns  ({:.0}x wall overhead)",
            size,
            modeled,
            real,
            real as f64 / modeled as f64
        );
        lat.push((size, modeled, real));
    }

    // Message rate vs window depth: 8-byte windowed puts.
    let windows = [1usize, 4, 16, 64];
    let mut rate: Vec<(usize, f64, f64)> = Vec::new();
    for &w in &windows {
        let modeled = mops(ops, windowed_elapsed_ns(PhotonConfig::default(), ops, w));
        let real = mops(ops, best_of(3, || windowed_elapsed_ns(sock_cfg(), ops, w)));
        println!("msgrate w={w:<3} modeled {modeled:>8.3} Mops/s  real {real:>8.3} Mops/s");
        rate.push((w, modeled, real));
    }

    // Shape verdicts: do both transports agree on the *trends*? The
    // modeled curves must be point-wise monotone (virtual time is
    // deterministic); the real curves need only grow end-to-end.
    let lat_modeled: Vec<f64> = lat.iter().map(|(_, m, _)| *m as f64).collect();
    let lat_real: Vec<f64> = lat.iter().map(|(_, _, r)| *r as f64).collect();
    let rate_modeled: Vec<f64> = rate.iter().map(|(_, m, _)| *m).collect();
    let rate_real: Vec<f64> = rate.iter().map(|(_, _, r)| *r).collect();
    let shapes = [
        format!(
            "latency_rises_with_size modeled={} real={}",
            monotone_up(&lat_modeled, 1.0),
            grows_overall(&lat_real)
        ),
        format!(
            "msgrate_rises_with_window modeled={} real={}",
            monotone_up(&rate_modeled, 1.0),
            grows_overall(&rate_real)
        ),
    ];
    for s in &shapes {
        println!("shape: {s}");
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"e23_model_vs_sockets\",");
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(json, "  \"ops\": {ops},");
    let _ = writeln!(json, "  \"latency_half_rtt\": [");
    for (k, (size, m, r)) in lat.iter().enumerate() {
        let comma = if k + 1 < lat.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"size\": {size}, \"modeled_vns\": {m}, \"real_wall_ns\": {r}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"msgrate_8B\": [");
    for (k, (w, m, r)) in rate.iter().enumerate() {
        let comma = if k + 1 < rate.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"window\": {w}, \"modeled_mops\": {m:.4}, \"real_mops\": {r:.4}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"shape\": [");
    for (k, s) in shapes.iter().enumerate() {
        let comma = if k + 1 < shapes.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{s}\"{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("BENCH_sockets.json");
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {}", path.display());
}
