//! Wall-clock throughput of the one-sided GET path, recorded as a JSON
//! baseline (sibling of `put_bench`, which covers the eager put TX path).
//!
//! ```text
//! get_bench --label batched            # writes results/BENCH_get_batched.json
//! get_bench --ops 100000 --reps 5
//! get_bench --progress-threads 2       # dedicated completion threads on
//! ```
//!
//! Scenarios (all on the `ideal` network model so wall-clock time is
//! dominated by the posting path's own locking and bookkeeping, not modeled
//! wire latency):
//!
//! * `single_get_8B` — strict request-response: one 8-byte
//!   `get_with_completion` outstanding at a time, local completion reaped
//!   before the next post.
//! * `windowed_get_8B_w{4,16,64}` — keep `w` gets outstanding, each its own
//!   signaled read; the sender reaps local completions in batches.
//! * `batched_get_8B_w{4,16,64}` — same windows posted through `get_many`:
//!   one doorbell and one signaled CQE per window, fanned out into `w`
//!   local completions through the batch side table.
//!
//! Reads are one-sided, so there is no receiver to drain and no ring-credit
//! backpressure: the measured loop is post → harvest → reap, which is why
//! GET batching shows up almost entirely as saved per-post bookkeeping.

use photon_core::{Completion, GetManyItem, PhotonCluster, PhotonConfig, ProbeFlags};
use photon_fabric::NetworkModel;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

struct Entry {
    name: String,
    ops: u64,
    ns: u128,
}

impl Entry {
    fn mops(&self) -> f64 {
        if self.ns == 0 {
            0.0
        } else {
            self.ops as f64 / self.ns as f64 * 1000.0
        }
    }
}

/// Progress threads for every cluster this process builds (0 = inline).
static PROGRESS_THREADS: AtomicUsize = AtomicUsize::new(0);

fn cluster() -> PhotonCluster {
    let cfg = PhotonConfig {
        progress_threads: PROGRESS_THREADS.load(Ordering::Relaxed),
        ..PhotonConfig::default()
    };
    PhotonCluster::new(2, NetworkModel::ideal(), cfg)
}

/// `window` 8-byte gets kept in flight over `ops` total operations, one
/// signaled read per get.
fn windowed_get(name: String, ops: u64, window: usize) -> Entry {
    let c = cluster();
    let p0 = c.rank(0);
    let dst = p0.register_buffer(64).unwrap();
    let src = c.rank(1).register_buffer(64).unwrap();
    let d = src.descriptor();
    let mut evs: Vec<Completion> = Vec::with_capacity(128);
    let t0 = Instant::now();
    let (mut posted, mut done) = (0u64, 0u64);
    let mut inflight = 0usize;
    while done < ops {
        while inflight < window && posted < ops {
            p0.get_with_completion(1, &dst, 0, 8, &d, 0, posted).unwrap();
            posted += 1;
            inflight += 1;
        }
        evs.clear();
        let n = p0.poll_completions(ProbeFlags::Local, &mut evs, 128).unwrap();
        done += n as u64;
        inflight -= n;
    }
    Entry { name, ops, ns: t0.elapsed().as_nanos() }
}

/// Same windows posted through the doorbell-batch API: one `get_many` call
/// (one doorbell, one signaled CQE) per window.
fn batched_get(name: String, ops: u64, window: usize) -> Entry {
    let c = cluster();
    let p0 = c.rank(0);
    let dst = p0.register_buffer(64).unwrap();
    let src = c.rank(1).register_buffer(64).unwrap();
    let d = src.descriptor();
    let mut evs: Vec<Completion> = Vec::with_capacity(128);
    let mut items: Vec<GetManyItem> = Vec::with_capacity(window);
    let t0 = Instant::now();
    let (mut posted, mut done) = (0u64, 0u64);
    while done < ops {
        let n = (window as u64).min(ops - posted);
        if n > 0 {
            items.clear();
            for i in 0..n {
                items.push(GetManyItem { loff: 0, len: 8, soff: 0, local_rid: posted + i });
            }
            p0.get_many(1, &dst, &d, &items).unwrap();
            posted += n;
        }
        evs.clear();
        done += p0.poll_completions(ProbeFlags::Local, &mut evs, 128).unwrap() as u64;
    }
    Entry { name, ops, ns: t0.elapsed().as_nanos() }
}

/// Min over `reps` runs: each scenario does a fixed amount of work, so the
/// minimum is the run least disturbed by scheduler noise.
fn best_of(reps: u32, f: impl Fn() -> Entry) -> Entry {
    let mut best: Option<Entry> = None;
    for _ in 0..reps {
        let e = f();
        best = Some(match best {
            Some(b) if b.ns <= e.ns => b,
            _ => e,
        });
    }
    best.expect("reps >= 1")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = String::from("current");
    let mut ops = 100_000u64;
    let mut reps = 5u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                label = args[i + 1].clone();
                i += 2;
            }
            "--ops" => {
                ops = args[i + 1].parse().expect("--ops takes a number");
                i += 2;
            }
            "--reps" => {
                reps = args[i + 1].parse().expect("--reps takes a number");
                i += 2;
            }
            "--progress-threads" => {
                let n: usize = args[i + 1].parse().expect("--progress-threads takes a number");
                PROGRESS_THREADS.store(n, Ordering::Relaxed);
                i += 2;
            }
            other => {
                eprintln!("unknown arg: {other}");
                std::process::exit(2);
            }
        }
    }

    let mut entries = vec![best_of(reps, || windowed_get("single_get_8B".into(), ops / 4, 1))];
    for w in [4usize, 16, 64] {
        entries.push(best_of(reps, || windowed_get(format!("windowed_get_8B_w{w}"), ops, w)));
    }
    for w in [4usize, 16, 64] {
        entries.push(best_of(reps, || batched_get(format!("batched_get_8B_w{w}"), ops, w)));
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"one_sided_get_path\",");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"stat\": \"min_over_reps\",");
    let _ = writeln!(json, "  \"entries\": [");
    for (k, e) in entries.iter().enumerate() {
        let comma = if k + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ops\": {}, \"ns_total\": {}, \"mops_per_sec\": {:.4}}}{comma}",
            e.name, e.ops, e.ns, e.mops()
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    for e in &entries {
        println!("{:>20}  {:>9} ops  {:>12} ns  {:>8.3} Mops/s", e.name, e.ops, e.ns, e.mops());
    }
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("BENCH_get_{label}.json"));
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {}", path.display());
}
