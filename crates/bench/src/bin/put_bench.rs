//! Wall-clock throughput of the eager put TX path, recorded as a JSON
//! baseline so successive PRs have a perf trajectory (sibling of
//! `probe_bench`, which covers the completion side).
//!
//! ```text
//! put_bench --label baseline           # writes results/BENCH_put_baseline.json
//! put_bench --label batched --ops 100000
//! put_bench --check results/BENCH_put_batched.json --max-regress-pct 2
//! put_bench --label traced --trace     # extra obs-enabled pass + Perfetto trace
//! put_bench --progress-threads 2       # dedicated completion threads on
//! put_bench --backend sock --ops 2000  # real loopback sockets transport
//! ```
//!
//! Scenarios (all on the `ideal` network model so wall-clock time is
//! dominated by the posting path's own allocation, locking, and per-post
//! bookkeeping, not modeled wire latency):
//!
//! * `single_put_8B` — strict request-response: one 8-byte
//!   `put_with_completion` outstanding at a time, local completion reaped
//!   before the next post.
//! * `windowed_put_8B_w{4,16,64}` — keep `w` puts outstanding; the sender
//!   reaps local completions in batches while the receiver drains remote
//!   notifications (returning ring credits). This is the E3 message-rate
//!   shape, and the scenario the zero-alloc/doorbell work targets.
//! * `batched_put_8B_w{4,16,64}` (feature `batch-put`) — same windows, but
//!   each window posts through `put_many`: one TX lock acquisition and one
//!   doorbell per window instead of one per frame.
//!
//! `--check <baseline.json>` compares this run against a committed baseline
//! (scenarios matched by name) and exits non-zero when any shared scenario
//! regressed by more than `--max-regress-pct` (default 2%). `--trace` runs
//! one extra *observability-enabled* windowed pass (excluded from the timed
//! entries), writes its span trace as Chrome trace_event JSON loadable in
//! Perfetto, and folds per-stage latency summaries into the result JSON's
//! `notes` array.

use photon_core::obs::chrome_trace_json;
use photon_core::{BackendKind, Completion, PhotonCluster, PhotonConfig, ProbeFlags, TraceExport};
use photon_fabric::NetworkModel;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

struct Entry {
    name: String,
    ops: u64,
    ns: u128,
}

impl Entry {
    fn mops(&self) -> f64 {
        if self.ns == 0 {
            0.0
        } else {
            self.ops as f64 / self.ns as f64 * 1000.0
        }
    }
}

/// Progress threads for every cluster this process builds (0 = inline).
static PROGRESS_THREADS: AtomicUsize = AtomicUsize::new(0);
/// `--backend sock`: run over the real sockets transport (loopback UDP)
/// instead of the simulated fabric. Wall-clock numbers then include real
/// syscall + wire costs and are NOT comparable to sim baselines — use a
/// separate `--label`.
static BACKEND_SOCK: AtomicBool = AtomicBool::new(false);

fn cluster() -> PhotonCluster {
    let cfg = PhotonConfig {
        progress_threads: PROGRESS_THREADS.load(Ordering::Relaxed),
        backend: if BACKEND_SOCK.load(Ordering::Relaxed) {
            BackendKind::Sock
        } else {
            BackendKind::Sim
        },
        ..PhotonConfig::default()
    };
    PhotonCluster::new(2, NetworkModel::ideal(), cfg)
}

/// Drain up to `want` of rank 1's remote notifications (returns credits to
/// the sender as a side effect of its probe loop).
fn drain_remote(c: &PhotonCluster, evs: &mut Vec<Completion>, want: u64) -> u64 {
    let p1 = c.rank(1);
    let mut got = 0u64;
    while got < want {
        evs.clear();
        let n = p1.poll_completions(ProbeFlags::Remote, evs, 64).expect("remote probe") as u64;
        if n == 0 {
            break;
        }
        got += n;
    }
    got
}

/// `window` 8-byte eager puts kept in flight over `ops` total operations.
fn windowed_put(name: String, ops: u64, window: usize) -> Entry {
    let c = cluster();
    let p0 = c.rank(0);
    let src = p0.register_buffer(64).unwrap();
    let dst = c.rank(1).register_buffer(64).unwrap();
    let d = dst.descriptor();
    let mut evs: Vec<Completion> = Vec::with_capacity(128);
    let t0 = Instant::now();
    let (mut posted, mut done, mut drained) = (0u64, 0u64, 0u64);
    let mut inflight = 0usize;
    while done < ops {
        while inflight < window && posted < ops {
            if p0.try_put_with_completion(1, &src, 0, 8, &d, 0, posted, posted).unwrap() {
                posted += 1;
                inflight += 1;
            } else {
                break; // out of ring credits: let the receiver catch up
            }
        }
        drained += drain_remote(&c, &mut evs, posted - drained);
        evs.clear();
        let n = p0.poll_completions(ProbeFlags::Local, &mut evs, 128).unwrap();
        done += n as u64;
        inflight -= n;
    }
    Entry { name, ops, ns: t0.elapsed().as_nanos() }
}

/// Same windows, posted through the doorbell-batch API: one `put_many` call
/// per window.
#[cfg(feature = "batch-put")]
fn batched_put(name: String, ops: u64, window: usize) -> Entry {
    use photon_core::PutManyItem;
    let c = cluster();
    let p0 = c.rank(0);
    let src = p0.register_buffer(64).unwrap();
    let dst = c.rank(1).register_buffer(64).unwrap();
    let d = dst.descriptor();
    let mut evs: Vec<Completion> = Vec::with_capacity(128);
    let mut items: Vec<PutManyItem> = Vec::with_capacity(window);
    let t0 = Instant::now();
    let (mut posted, mut done, mut drained) = (0u64, 0u64, 0u64);
    while done < ops {
        let n = (window as u64).min(ops - posted);
        if n > 0 {
            items.clear();
            for i in 0..n {
                items.push(PutManyItem {
                    loff: 0,
                    len: 8,
                    doff: 0,
                    local_rid: posted + i,
                    remote_rid: posted + i,
                });
            }
            let accepted = p0.try_put_many(1, &src, &d, &items).unwrap() as u64;
            posted += accepted;
        }
        drained += drain_remote(&c, &mut evs, posted - drained);
        evs.clear();
        done += p0.poll_completions(ProbeFlags::Local, &mut evs, 128).unwrap() as u64;
    }
    Entry { name, ops, ns: t0.elapsed().as_nanos() }
}

/// Min over `reps` runs: each scenario does a fixed amount of work, so the
/// minimum is the run least disturbed by scheduler noise.
fn best_of(reps: u32, f: impl Fn() -> Entry) -> Entry {
    let mut best: Option<Entry> = None;
    for _ in 0..reps {
        let e = f();
        best = Some(match best {
            Some(b) if b.ns <= e.ns => b,
            _ => e,
        });
    }
    best.expect("reps >= 1")
}

/// One windowed pass with span/histogram recording *on*: returns the Chrome
/// trace_event JSON (all ranks), the op-log JSON, and latency-summary
/// footnote lines. Never folded into the timed entries.
fn traced_pass(ops: u64, window: usize) -> (String, String, Vec<String>) {
    let c = cluster();
    for p in c.ranks() {
        p.obs().enable();
        p.tracer().enable();
    }
    let p0 = c.rank(0);
    let src = p0.register_buffer(64).unwrap();
    let dst = c.rank(1).register_buffer(64).unwrap();
    let d = dst.descriptor();
    let mut evs: Vec<Completion> = Vec::with_capacity(128);
    let (mut posted, mut done, mut drained) = (0u64, 0u64, 0u64);
    let mut inflight = 0usize;
    while done < ops {
        while inflight < window && posted < ops {
            if p0.try_put_with_completion(1, &src, 0, 8, &d, 0, posted, posted).unwrap() {
                posted += 1;
                inflight += 1;
            } else {
                break;
            }
        }
        drained += drain_remote(&c, &mut evs, posted - drained);
        evs.clear();
        let n = p0.poll_completions(ProbeFlags::Local, &mut evs, 128).unwrap();
        done += n as u64;
        inflight -= n;
    }
    let spans: Vec<_> = c.ranks().iter().map(|p| p.span_trace()).collect();
    let chrome = chrome_trace_json(&spans);
    let ops_json = TraceExport::json(&p0.tracer().records());
    let mut notes = Vec::new();
    for r in 0..c.len() {
        for s in c.rank(r).metrics().latencies {
            notes.push(format!(
                "rank{r} {} peer{}: count={} p50={}ns p99={}ns max={}ns",
                s.kind.as_str(),
                s.peer,
                s.count,
                s.p50_ns,
                s.p99_ns,
                s.max_ns
            ));
        }
    }
    (chrome, ops_json, notes)
}

/// Pull `(name, mops_per_sec)` pairs out of a bench JSON produced by this
/// binary. Hand-rolled line scan — the format is ours and stable.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(npos) = line.find("\"name\": \"") else { continue };
        let rest = &line[npos + 9..];
        let Some(nend) = rest.find('"') else { continue };
        let name = rest[..nend].to_string();
        let Some(mpos) = line.find("\"mops_per_sec\": ") else { continue };
        let tail = &line[mpos + 16..];
        let num: String =
            tail.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

/// Compare `entries` against `baseline`, cell by cell. Every measured
/// scenario must have a baseline entry and vice versa — a missing cell is a
/// failure, not a silent skip (the old behavior let a renamed scenario
/// evade the gate entirely). Returns the per-scenario verdict lines (ending
/// with a worst-regression summary) and whether the check failed.
fn check_against(
    entries: &[Entry],
    baseline: &[(String, f64)],
    max_pct: f64,
) -> (Vec<String>, bool) {
    let mut lines = Vec::new();
    let mut breached = false;
    // Worst (most negative) delta across the compared cells.
    let mut worst: Option<(&str, f64)> = None;
    for e in entries {
        let Some((_, base)) = baseline.iter().find(|(n, _)| *n == e.name) else {
            breached = true;
            lines.push(format!(
                "{:>20}  MISSING from baseline — regenerate it to cover this scenario",
                e.name
            ));
            continue;
        };
        let cur = e.mops();
        let delta_pct = if *base > 0.0 { (cur - base) / base * 100.0 } else { 0.0 };
        if worst.is_none_or(|(_, w)| delta_pct < w) {
            worst = Some((&e.name, delta_pct));
        }
        let bad = delta_pct < -max_pct;
        breached |= bad;
        lines.push(format!(
            "{:>20}  base {:>8.3}  now {:>8.3} Mops/s  {:>+7.2}%  {}",
            e.name,
            base,
            cur,
            delta_pct,
            if bad { "REGRESSED" } else { "ok" }
        ));
    }
    for (name, _) in baseline {
        if !entries.iter().any(|e| e.name == *name) {
            breached = true;
            lines.push(format!("{name:>20}  in baseline but NOT measured this run"));
        }
    }
    if let Some((name, delta)) = worst {
        lines.push(format!("worst regression: {name} ({delta:+.2}%)"));
    }
    (lines, breached)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = String::from("current");
    let mut ops = 100_000u64;
    let mut reps = 5u32;
    let mut check: Option<String> = None;
    let mut max_regress_pct = 2.0f64;
    let mut trace = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                label = args[i + 1].clone();
                i += 2;
            }
            "--ops" => {
                ops = args[i + 1].parse().expect("--ops takes a number");
                i += 2;
            }
            "--reps" => {
                reps = args[i + 1].parse().expect("--reps takes a number");
                i += 2;
            }
            "--check" => {
                check = Some(args[i + 1].clone());
                i += 2;
            }
            "--max-regress-pct" => {
                max_regress_pct = args[i + 1].parse().expect("--max-regress-pct takes a number");
                i += 2;
            }
            "--trace" => {
                trace = true;
                i += 1;
            }
            "--progress-threads" => {
                let n: usize = args[i + 1].parse().expect("--progress-threads takes a number");
                PROGRESS_THREADS.store(n, Ordering::Relaxed);
                i += 2;
            }
            "--backend" => {
                match args[i + 1].as_str() {
                    "sim" => BACKEND_SOCK.store(false, Ordering::Relaxed),
                    "sock" => BACKEND_SOCK.store(true, Ordering::Relaxed),
                    other => {
                        eprintln!("--backend takes sim|sock, got {other}");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("unknown arg: {other}");
                std::process::exit(2);
            }
        }
    }

    #[cfg_attr(not(feature = "batch-put"), allow(unused_mut))]
    let mut entries = vec![
        best_of(reps, || windowed_put("single_put_8B".into(), ops / 4, 1)),
        best_of(reps, || windowed_put("windowed_put_8B_w4".into(), ops, 4)),
        best_of(reps, || windowed_put("windowed_put_8B_w16".into(), ops, 16)),
        best_of(reps, || windowed_put("windowed_put_8B_w64".into(), ops, 64)),
    ];
    #[cfg(feature = "batch-put")]
    for w in [4usize, 16, 64] {
        entries.push(best_of(reps, || batched_put(format!("batched_put_8B_w{w}"), ops, w)));
    }

    // Optional obs-enabled pass: its artifacts ride along as footnotes and
    // side files; it never contributes to the timed entries above.
    let mut notes: Vec<String> = Vec::new();
    let mut trace_files: Vec<String> = Vec::new();
    let dir = std::path::Path::new("results");
    if trace {
        let (chrome, ops_json, hist_notes) = traced_pass(ops.min(10_000), 16);
        std::fs::create_dir_all(dir).expect("create results dir");
        let span_path = dir.join(format!("BENCH_put_{label}_trace.json"));
        std::fs::write(&span_path, &chrome).expect("write span trace");
        let ops_path = dir.join(format!("BENCH_put_{label}_ops.json"));
        std::fs::write(&ops_path, &ops_json).expect("write op log");
        trace_files.push(span_path.display().to_string());
        trace_files.push(ops_path.display().to_string());
        notes.extend(hist_notes);
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"eager_put_tx_path\",");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(
        json,
        "  \"backend\": \"{}\",",
        if BACKEND_SOCK.load(Ordering::Relaxed) { "sock" } else { "sim" }
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"stat\": \"min_over_reps\",");
    let _ = writeln!(json, "  \"entries\": [");
    for (k, e) in entries.iter().enumerate() {
        let comma = if k + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ops\": {}, \"ns_total\": {}, \"mops_per_sec\": {:.4}}}{comma}",
            e.name, e.ops, e.ns, e.mops()
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"notes\": [");
    for (k, n) in notes.iter().enumerate() {
        let comma = if k + 1 < notes.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{}\"{comma}", n.replace('"', "'"));
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    for e in &entries {
        println!("{:>20}  {:>9} ops  {:>12} ns  {:>8.3} Mops/s", e.name, e.ops, e.ns, e.mops());
    }
    for n in &notes {
        println!("  # {n}");
    }
    for f in &trace_files {
        println!("wrote {f}");
    }
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("BENCH_put_{label}.json"));
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {}", path.display());

    if let Some(base_path) = check {
        let text = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("read baseline {base_path}: {e}"));
        let baseline = parse_baseline(&text);
        let (lines, breached) = check_against(&entries, &baseline, max_regress_pct);
        println!("-- check vs {base_path} (max regression {max_regress_pct}%) --");
        for l in &lines {
            println!("{l}");
        }
        if breached {
            eprintln!("FAIL: at least one scenario regressed beyond {max_regress_pct}%");
            std::process::exit(1);
        }
        println!("check passed");
    }
}
