//! E22 — churn at scale: gossip membership + lazy connection cache.
//!
//! ```text
//! e22_churn                # full sweep, writes results/BENCH_churn.json
//! e22_churn --smoke        # 64-node cells only, for CI
//! ```
//!
//! Sweeps cluster size {64, 256, 1000} × churn rate {50, 100} (the
//! percentage fed to the churn plan's victim scaler) over seeded cases of
//! the simtest churn driver, with the connection-cache capacity pinned to
//! 16 so per-rank state is comparable across sizes. Reported per cell:
//!
//! * **dissemination** — gossip rounds the post-churn convergence phase
//!   needed to reach ground truth (the O(log n) claim made measurable);
//! * **reconnect latency** — mean send attempts until a rejoined rank
//!   accepted traffic again (each failed attempt advances one 20 µs step);
//! * **per-rank state** — the largest connection-cache and membership-view
//!   footprints any rank ended the case with (the sublinearity claim);
//! * traffic/gossip volume counters for context.
//!
//! Cases are deterministic per (seed, case id): the JSON is reproducible
//! bit-for-bit. Wall time per cell is also recorded, but only as a
//! convenience — virtual-time metrics are the signal.

use photon_simtest::{run_churn_case_metrics, ChurnMetrics, SimParams};
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 0xE22_C41;
const CAP: usize = 16;

struct Cell {
    nodes: usize,
    churn_pct: u8,
    cases: u32,
    conv_rounds_mean: f64,
    reconnect_attempts_mean: f64,
    max_conn_state: usize,
    max_member_state: usize,
    posted: u64,
    resolved_ok: u64,
    resolved_err: u64,
    gossip_msgs: u64,
    violations: usize,
    wall_ms: u128,
}

fn run_cell(nodes: usize, churn_pct: u8, cases: u32) -> Cell {
    let params = SimParams {
        min_nodes: nodes,
        max_nodes: nodes,
        min_ops: 16,
        max_ops: 16,
        crash_pct: churn_pct,
        ..SimParams::churn()
    };
    let t0 = Instant::now();
    let mut agg = ChurnMetrics::default();
    let (mut conv_sum, mut conv_n) = (0u64, 0u64);
    let mut violations = 0usize;
    for case_id in 0..cases as u64 {
        let (rep, m) = run_churn_case_metrics(SEED, case_id, &params, Some(CAP));
        violations += rep.violations.len();
        if let Some(r) = m.conv_rounds {
            conv_sum += r;
            conv_n += 1;
        }
        agg.posted += m.posted;
        agg.resolved_ok += m.resolved_ok;
        agg.resolved_err += m.resolved_err;
        agg.gossip_msgs += m.gossip_msgs;
        agg.reconnect_attempts += m.reconnect_attempts;
        agg.max_conn_state = agg.max_conn_state.max(m.max_conn_state);
        agg.max_member_state = agg.max_member_state.max(m.max_member_state);
    }
    Cell {
        nodes,
        churn_pct,
        cases,
        conv_rounds_mean: if conv_n > 0 { conv_sum as f64 / conv_n as f64 } else { f64::NAN },
        reconnect_attempts_mean: agg.reconnect_attempts as f64 / cases as f64,
        max_conn_state: agg.max_conn_state,
        max_member_state: agg.max_member_state,
        posted: agg.posted,
        resolved_ok: agg.resolved_ok,
        resolved_err: agg.resolved_err,
        gossip_msgs: agg.gossip_msgs,
        violations,
        wall_ms: t0.elapsed().as_millis(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke { &[64] } else { &[64, 256, 1000] };
    let cases: u32 = if smoke { 1 } else { 2 };

    let mut cells: Vec<Cell> = Vec::new();
    for &n in sizes {
        for pct in [50u8, 100] {
            let c = run_cell(n, pct, cases);
            println!(
                "n={:<5} churn={:>3}%  conv {:>5.1} rounds  reconnect {:>5.1} attempts  \
                 conn {:>8} B  member {:>8} B  ops {}/{} ok/err  viol {}  ({} ms)",
                c.nodes,
                c.churn_pct,
                c.conv_rounds_mean,
                c.reconnect_attempts_mean,
                c.max_conn_state,
                c.max_member_state,
                c.resolved_ok,
                c.resolved_err,
                c.violations,
                c.wall_ms
            );
            cells.push(c);
        }
    }

    // Headline verdicts: convergence everywhere, and connection state flat
    // across an order-of-magnitude size change (the cache cap at work).
    let mut verdicts: Vec<String> = Vec::new();
    let any_viol = cells.iter().any(|c| c.violations > 0);
    verdicts.push(format!(
        "all cells converged without violations -> {}",
        if any_viol { "FAIL" } else { "PASS" }
    ));
    if let (Some(small), Some(big)) = (
        cells.iter().find(|c| c.nodes == *sizes.first().unwrap()),
        cells.iter().find(|c| c.nodes == *sizes.last().unwrap()),
    ) {
        if small.nodes != big.nodes {
            let ratio = big.max_conn_state as f64 / small.max_conn_state.max(1) as f64;
            verdicts.push(format!(
                "conn state {}B @ n={} vs {}B @ n={} (x{:.2} for x{:.1} nodes) -> {}",
                small.max_conn_state,
                small.nodes,
                big.max_conn_state,
                big.nodes,
                ratio,
                big.nodes as f64 / small.nodes as f64,
                if ratio < 2.0 { "PASS" } else { "FAIL" }
            ));
        }
    }
    for v in &verdicts {
        println!("  # {v}");
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"E22_churn_at_scale\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"conn_cache_cap\": {CAP},");
    let _ = writeln!(json, "  \"cells\": [");
    for (k, c) in cells.iter().enumerate() {
        let comma = if k + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"nodes\": {}, \"churn_pct\": {}, \"cases\": {}, \
             \"conv_rounds_mean\": {:.2}, \"reconnect_attempts_mean\": {:.2}, \
             \"max_conn_state_bytes\": {}, \"max_member_state_bytes\": {}, \
             \"posted\": {}, \"resolved_ok\": {}, \"resolved_err\": {}, \
             \"gossip_msgs\": {}, \"violations\": {}, \"wall_ms\": {}}}{comma}",
            c.nodes,
            c.churn_pct,
            c.cases,
            c.conv_rounds_mean,
            c.reconnect_attempts_mean,
            c.max_conn_state,
            c.max_member_state,
            c.posted,
            c.resolved_ok,
            c.resolved_err,
            c.gossip_msgs,
            c.violations,
            c.wall_ms
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"verdicts\": [");
    for (k, v) in verdicts.iter().enumerate() {
        let comma = if k + 1 < verdicts.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{v}\"{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("BENCH_churn.json");
    std::fs::write(&path, json).expect("write experiment json");
    println!("wrote {}", path.display());
}
