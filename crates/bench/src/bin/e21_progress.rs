//! E21 — progress-engine sweep: dedicated completion threads × doorbell
//! window.
//!
//! ```text
//! e21_progress                # full sweep, writes results/E21_progress.json
//! e21_progress --smoke        # reduced op counts for CI
//! ```
//!
//! Two grids, both on the `ideal` network model:
//!
//! 1. **Batched puts** — `progress_threads ∈ {0, 1, 2, 4}` ×
//!    `window ∈ {4, 16, 64}` through `put_many`, measuring how the
//!    dedicated-thread engine interacts with doorbell batching (0 =
//!    caller-driven inline progress, the deterministic fallback).
//! 2. **GET batching** — unbatched (`get_with_completion`, one signaled
//!    read per get) vs batched (`get_many`, one doorbell + one CQE per
//!    window) at `window ∈ {1, 4, 16, 64}`, inline progress. Window 1 is
//!    the degenerate batch, included as the no-win sanity row; the
//!    acceptance line is batched ≥ unbatched at every window ≥ 4.
//!
//! Every cell is min-over-reps (the run least disturbed by scheduler
//! noise). Results land in `results/E21_progress.json`; EXPERIMENTS.md §E21
//! interprets them.

use photon_core::{Completion, GetManyItem, PhotonCluster, PhotonConfig, ProbeFlags, PutManyItem};
use photon_fabric::NetworkModel;
use std::fmt::Write as _;
use std::time::Instant;

struct Cell {
    scenario: String,
    progress_threads: usize,
    window: usize,
    ops: u64,
    ns: u128,
}

impl Cell {
    fn mops(&self) -> f64 {
        if self.ns == 0 {
            0.0
        } else {
            self.ops as f64 / self.ns as f64 * 1000.0
        }
    }
}

fn cluster(progress_threads: usize) -> PhotonCluster {
    let cfg = PhotonConfig { progress_threads, ..PhotonConfig::default() };
    PhotonCluster::new(2, NetworkModel::ideal(), cfg)
}

/// Drain up to `want` of rank 1's remote notifications (returns ring
/// credits to the sender as a side effect).
fn drain_remote(c: &PhotonCluster, evs: &mut Vec<Completion>, want: u64) -> u64 {
    let p1 = c.rank(1);
    let mut got = 0u64;
    while got < want {
        evs.clear();
        let n = p1.poll_completions(ProbeFlags::Remote, evs, 64).expect("remote probe") as u64;
        if n == 0 {
            break;
        }
        got += n;
    }
    got
}

/// One batched-put cell: `window`-sized `put_many` doorbells, `ops` total.
fn batched_put_cell(pt: usize, window: usize, ops: u64) -> u128 {
    let c = cluster(pt);
    let p0 = c.rank(0);
    let src = p0.register_buffer(64).unwrap();
    let dst = c.rank(1).register_buffer(64).unwrap();
    let d = dst.descriptor();
    let mut evs: Vec<Completion> = Vec::with_capacity(128);
    let mut items: Vec<PutManyItem> = Vec::with_capacity(window);
    let t0 = Instant::now();
    let (mut posted, mut done, mut drained) = (0u64, 0u64, 0u64);
    while done < ops {
        let n = (window as u64).min(ops - posted);
        if n > 0 {
            items.clear();
            for i in 0..n {
                items.push(PutManyItem {
                    loff: 0,
                    len: 8,
                    doff: 0,
                    local_rid: posted + i,
                    remote_rid: posted + i,
                });
            }
            posted += p0.try_put_many(1, &src, &d, &items).unwrap() as u64;
        }
        drained += drain_remote(&c, &mut evs, posted - drained);
        evs.clear();
        done += p0.poll_completions(ProbeFlags::Local, &mut evs, 128).unwrap() as u64;
    }
    t0.elapsed().as_nanos()
}

/// One GET cell: `batched` selects `get_many` (one doorbell per window)
/// vs `get_with_completion` (one signaled read per get).
fn get_cell(batched: bool, window: usize, ops: u64) -> u128 {
    let c = cluster(0);
    let p0 = c.rank(0);
    let dst = p0.register_buffer(64).unwrap();
    let src = c.rank(1).register_buffer(64).unwrap();
    let d = src.descriptor();
    let mut evs: Vec<Completion> = Vec::with_capacity(128);
    let mut items: Vec<GetManyItem> = Vec::with_capacity(window);
    let t0 = Instant::now();
    let (mut posted, mut done) = (0u64, 0u64);
    let mut inflight = 0usize;
    while done < ops {
        if batched {
            let n = (window as u64).min(ops - posted);
            if n > 0 {
                items.clear();
                for i in 0..n {
                    items.push(GetManyItem { loff: 0, len: 8, soff: 0, local_rid: posted + i });
                }
                p0.get_many(1, &dst, &d, &items).unwrap();
                posted += n;
            }
        } else {
            while inflight < window && posted < ops {
                p0.get_with_completion(1, &dst, 0, 8, &d, 0, posted).unwrap();
                posted += 1;
                inflight += 1;
            }
        }
        evs.clear();
        let n = p0.poll_completions(ProbeFlags::Local, &mut evs, 128).unwrap();
        done += n as u64;
        inflight = inflight.saturating_sub(n);
    }
    t0.elapsed().as_nanos()
}

fn best_of(reps: u32, f: impl Fn() -> u128) -> u128 {
    (0..reps).map(|_| f()).min().expect("reps >= 1")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (ops, reps) = if smoke { (10_000u64, 2u32) } else { (100_000u64, 5u32) };

    let mut cells: Vec<Cell> = Vec::new();
    for pt in [0usize, 1, 2, 4] {
        for w in [4usize, 16, 64] {
            let ns = best_of(reps, || batched_put_cell(pt, w, ops));
            cells.push(Cell {
                scenario: "batched_put".into(),
                progress_threads: pt,
                window: w,
                ops,
                ns,
            });
            let c = cells.last().unwrap();
            println!(
                "batched_put  pt={pt} w={w:<3} {:>9} ops  {:>12} ns  {:>8.3} Mops/s",
                c.ops,
                c.ns,
                c.mops()
            );
        }
    }
    for w in [1usize, 4, 16, 64] {
        for (batched, scen) in [(false, "unbatched_get"), (true, "batched_get")] {
            let ns = best_of(reps, || get_cell(batched, w, ops));
            cells.push(Cell { scenario: scen.into(), progress_threads: 0, window: w, ops, ns });
            let c = cells.last().unwrap();
            println!(
                "{scen:<12} pt=0 w={w:<3} {:>9} ops  {:>12} ns  {:>8.3} Mops/s",
                c.ops,
                c.ns,
                c.mops()
            );
        }
    }

    // The headline acceptance comparison, computed here so the JSON carries
    // the verdict and not just the raw grid.
    let mops = |scen: &str, w: usize| {
        cells.iter().find(|c| c.scenario == scen && c.window == w).map(|c| c.mops()).unwrap_or(0.0)
    };
    let mut verdicts: Vec<String> = Vec::new();
    for w in [4usize, 16, 64] {
        let (b, u) = (mops("batched_get", w), mops("unbatched_get", w));
        verdicts.push(format!(
            "get_w{w}: batched {b:.3} vs unbatched {u:.3} Mops/s -> {}",
            if b > u { "PASS" } else { "FAIL" }
        ));
    }
    for v in &verdicts {
        println!("  # {v}");
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"E21_progress_engine_sweep\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"stat\": \"min_over_reps\",");
    let _ = writeln!(json, "  \"cells\": [");
    for (k, c) in cells.iter().enumerate() {
        let comma = if k + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"progress_threads\": {}, \"window\": {}, \"ops\": {}, \"ns_total\": {}, \"mops_per_sec\": {:.4}}}{comma}",
            c.scenario, c.progress_threads, c.window, c.ops, c.ns, c.mops()
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"get_batching_verdicts\": [");
    for (k, v) in verdicts.iter().enumerate() {
        let comma = if k + 1 < verdicts.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{v}\"{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("E21_progress.json");
    std::fs::write(&path, json).expect("write experiment json");
    println!("wrote {}", path.display());
}
