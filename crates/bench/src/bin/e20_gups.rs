//! E20 — GUPS/YCSB-style mixed read-write sweep over the `photon-ds` DHT,
//! measuring the **one-sided vs RPC crossover** against value size and
//! client count.
//!
//! ```text
//! e20_gups                       # full sweep, writes results/BENCH_gups.json
//! e20_gups --smoke               # CI-sized subset, same JSON shape
//! e20_gups --ops 4000 --label x  # per-client op count / output label
//! ```
//!
//! Each cell boots a `clients`-rank cluster (weak scaling: every rank hosts
//! a shard *and* one client thread, the GUPS shape), prefills a keyspace at
//! ~35% table load, then every client hammers uniformly random keys with a
//! 50/50 get/put mix (YCSB-A) — once via the one-sided path and once via
//! RPC, against the same prefilled table, so the two numbers differ only in
//! the access path. Tables are sized by a fixed per-rank byte budget, so
//! small values get the capacity story (1M+ buckets at 8 B) and large
//! values trade capacity for payload.
//!
//! Why a crossover exists: a one-sided get is one RDMA read, with no owner
//! CPU and no scheduler hop, but a one-sided put pays the seqlock protocol
//! (snapshot read, lock CAS, payload write, release write — four fabric
//! round trips), every one of them moving or touching the full fixed-size
//! slot. An RPC op pays the invocation layer (send, scheduler, handler
//! dispatch, reply) once, carries only the actual value bytes, and executes
//! under cheap local locking at the owner. As the value (and therefore
//! slot) grows, the one-sided put's multi-trip full-slot protocol loses to
//! the single-trip RPC; reads favor one-sided much longer.
//!
//! The run prints ops/s tables per value size and appends the JSON to
//! `results/BENCH_gups.json` (committed; CI re-runs `--smoke` and uploads
//! its copy as an artifact, non-gating).

use photon_ds::{AccessPath, Dht, DhtConfig, DsError};
use photon_fabric::NetworkModel;
use photon_runtime::{ActionRegistry, RtConfig, RuntimeCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Per-rank bucket-region byte budget: holds the table "millions of
/// buckets" sized at small values without making 4 KiB cells silly.
const BYTES_PER_RANK: usize = 16 << 20;

/// Table load factor the prefill targets, in percent. Low enough that the
/// bounded probe window almost never fills at any sweep size.
const LOAD_PCT: usize = 35;

struct Cell {
    path: &'static str,
    vsize: usize,
    clients: usize,
    keyspace: usize,
    buckets_total: usize,
    ops: u64,
    full_errors: u64,
    /// Wall-clock of the whole cell (host overhead + scheduling).
    ns: u128,
    /// Modeled-network makespan: max per-client virtual-clock delta. This
    /// is where the one-sided/RPC crossover lives — virtual time charges
    /// every fabric round trip and byte at IB-FDR rates, which the
    /// synchronous simulation makes nearly free in wall time.
    vns: u64,
}

impl Cell {
    fn kops(&self) -> f64 {
        if self.ns == 0 {
            0.0
        } else {
            self.ops as f64 / self.ns as f64 * 1_000_000.0
        }
    }

    fn vkops(&self) -> f64 {
        if self.vns == 0 {
            0.0
        } else {
            self.ops as f64 / self.vns as f64 * 1_000_000.0
        }
    }

    fn v_us_per_op(&self) -> f64 {
        self.vns as f64 / 1000.0 / self.ops as f64 * self.clients as f64
    }

    fn name(&self) -> String {
        format!("dht_{}_v{}_c{}", self.path, self.vsize, self.clients)
    }
}

fn dht_config(vsize: usize) -> DhtConfig {
    // Slot = 3 header words + 8-byte key + inline value (8-aligned).
    let slot = 24 + 8 + vsize.next_multiple_of(8);
    DhtConfig {
        buckets_per_rank: (BYTES_PER_RANK / slot).next_power_of_two() / 2,
        key_max: 8,
        val_max: vsize,
        ..DhtConfig::default()
    }
}

/// Boot a cluster + prefilled table for one (vsize, clients) pair. Returns
/// the cluster, the table, the keyspace size, and how many prefill puts the
/// probe window rejected (skipped keys stay absent; gets on them are legal).
fn boot(vsize: usize, clients: usize) -> (RuntimeCluster, Dht, usize, u64) {
    let n = clients.max(2);
    let cluster =
        RuntimeCluster::new(n, NetworkModel::ib_fdr(), RtConfig::default(), ActionRegistry::new());
    let cfg = dht_config(vsize);
    let keyspace = cfg.buckets_per_rank * n * LOAD_PCT / 100;
    let dht = Dht::new(&cluster, cfg).expect("dht boots");
    let mut full = 0u64;
    let val = vec![0x5Au8; vsize];
    for k in 0..keyspace as u64 {
        let key = k.to_le_bytes();
        // Prefill from the owner rank: short-circuits to local memory.
        let owner = dht.owner_of(&key);
        match dht.put(cluster.node(owner), &key, &val, AccessPath::Rpc) {
            Ok(()) => {}
            Err(DsError::Full) => full += 1,
            Err(e) => panic!("prefill put failed: {e}"),
        }
    }
    (cluster, dht, keyspace, full)
}

/// The workload knobs of one sweep cell (everything but the access path,
/// which varies within a boot).
struct CellSpec {
    vsize: usize,
    keyspace: usize,
    clients: usize,
    ops_per_client: u64,
    seed: u64,
}

/// One measured cell: `clients` threads, each `ops_per_client` random
/// 50/50 get/put ops over the keyspace, all through `path`.
fn run_cell(cluster: &RuntimeCluster, dht: &Dht, path: AccessPath, spec: &CellSpec) -> Cell {
    let CellSpec { vsize, keyspace, clients, ops_per_client, seed } = *spec;
    let full_errors = AtomicU64::new(0);
    let max_vns = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let (full_errors, max_vns) = (&full_errors, &max_vns);
            s.spawn(move || {
                let node = cluster.node(c % cluster.len());
                let mut rng = StdRng::seed_from_u64(seed ^ (c as u64) << 32);
                let val = vec![0xA5u8; vsize];
                let v0 = node.photon().now().0;
                for _ in 0..ops_per_client {
                    let key = (rng.gen_range(0..keyspace) as u64).to_le_bytes();
                    let r = if rng.gen_range(0u32..100) < 50 {
                        dht.get(node, &key, path).map(|_| ())
                    } else {
                        dht.put(node, &key, &val, path)
                    };
                    match r {
                        Ok(()) => {}
                        Err(DsError::Full) => {
                            full_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("bench op failed: {e}"),
                    }
                }
                // Per-client modeled-network time for its op stream: the
                // clock advanced to each completion's virtual delivery.
                let dv = node.photon().now().0 - v0;
                max_vns.fetch_max(dv, Ordering::Relaxed);
            });
        }
    });
    let cfg = dht_config(vsize);
    Cell {
        path: if path == AccessPath::OneSided { "1s" } else { "rpc" },
        vsize,
        clients,
        keyspace,
        buckets_total: cfg.buckets_per_rank * clients.max(2),
        ops: ops_per_client * clients as u64,
        full_errors: full_errors.into_inner(),
        ns: t0.elapsed().as_nanos(),
        vns: max_vns.into_inner(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = String::from("full");
    let mut ops_per_client = 2_000u64;
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                label = args[i + 1].clone();
                i += 2;
            }
            "--ops" => {
                ops_per_client = args[i + 1].parse().expect("--ops takes a number");
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                label = String::from("smoke");
                i += 1;
            }
            other => {
                eprintln!("unknown arg: {other}");
                std::process::exit(2);
            }
        }
    }

    let (vsizes, client_counts): (Vec<usize>, Vec<usize>) = if smoke {
        ops_per_client = ops_per_client.min(300);
        (vec![8, 512], vec![2, 4])
    } else {
        (vec![8, 64, 512, 4096], vec![1, 2, 4, 8])
    };

    // Both paths per boot, so each comparison runs against the same
    // prefilled table.
    let mut cells: Vec<Cell> = Vec::new();
    for &vsize in &vsizes {
        for &clients in &client_counts {
            let (cluster, dht, keyspace, prefill_full) = boot(vsize, clients);
            if prefill_full > 0 {
                eprintln!(
                    "# v{vsize} c{clients}: {prefill_full} prefill keys hit a full probe window"
                );
            }
            let spec = CellSpec {
                vsize,
                keyspace,
                clients,
                ops_per_client,
                seed: 0xE20 ^ (vsize as u64) << 16,
            };
            for path in [AccessPath::OneSided, AccessPath::Rpc] {
                cells.push(run_cell(&cluster, &dht, path, &spec));
            }
            cluster.shutdown();
        }
    }

    // Crossover tables, one block per value size: wall Kops/s (host cost)
    // and modeled-network µs/op (virtual time at IB-FDR rates, the number
    // the crossover verdict uses).
    println!("e20_gups ({label}): 50/50 get/put, {ops_per_client} ops/client");
    print!("{:>6} {:>5} {:>9}", "vsize", "path", "metric");
    for c in &client_counts {
        print!(" {:>10}", format!("c={c}"));
    }
    println!("  (keyspace)");
    for &vsize in &vsizes {
        for path in ["1s", "rpc"] {
            let row = |metric: &str, f: &dyn Fn(&Cell) -> f64, ks: bool| {
                print!("{vsize:>6} {path:>5} {metric:>9}");
                let mut keys = 0;
                for &clients in &client_counts {
                    let cell = cells
                        .iter()
                        .find(|x| x.path == path && x.vsize == vsize && x.clients == clients)
                        .expect("cell ran");
                    keys = cell.keyspace;
                    print!(" {:>10.2}", f(cell));
                }
                if ks {
                    println!("  ({keys} keys)");
                } else {
                    println!();
                }
            };
            row("Kops/s", &Cell::kops, false);
            row("net us/op", &Cell::v_us_per_op, true);
        }
        // The headline: which path costs less modeled network time.
        print!("{:>6} {:>5} {:>9}", "", "win", "(net)");
        for &clients in &client_counts {
            let get = |p: &str| {
                cells
                    .iter()
                    .find(|x| x.path == p && x.vsize == vsize && x.clients == clients)
                    .map(|x| x.v_us_per_op())
                    .unwrap_or(f64::MAX)
            };
            print!(" {:>10}", if get("1s") <= get("rpc") { "1s" } else { "rpc" });
        }
        println!();
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"e20_gups_dht_crossover\",");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(json, "  \"mix\": \"50/50 get/put, uniform keys (YCSB-A)\",");
    let _ = writeln!(json, "  \"ops_per_client\": {ops_per_client},");
    let _ = writeln!(json, "  \"entries\": [");
    for (k, e) in cells.iter().enumerate() {
        let comma = if k + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"path\": \"{}\", \"value_bytes\": {}, \"clients\": {}, \
             \"keyspace\": {}, \"buckets_total\": {}, \"ops\": {}, \"full_errors\": {}, \
             \"ns_total\": {}, \"kops_per_sec\": {:.2}, \"net_ns_makespan\": {}, \
             \"net_kops_per_sec\": {:.2}, \"net_us_per_op\": {:.3}}}{comma}",
            e.name(),
            e.path,
            e.vsize,
            e.clients,
            e.keyspace,
            e.buckets_total,
            e.ops,
            e.full_errors,
            e.ns,
            e.kops(),
            e.vns,
            e.vkops(),
            e.v_us_per_op()
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("BENCH_gups.json");
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {}", path.display());
}
