//! # photon-bench — the experiment harness
//!
//! Regenerates every figure/table of the reconstructed Photon evaluation
//! (see `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured notes). The `figures` binary runs experiments by id and
//! writes both an aligned console table and a CSV under `results/`.
//!
//! Latencies and bandwidths are **virtual-time** measurements from the
//! LogGP-modeled fabric (deterministic for the sequential patterns used);
//! software-path costs (probe, registration, ledger ops) are measured in
//! wall time by the criterion benches under `benches/`.

pub mod experiments;
pub mod report;

pub use report::Table;
