//! Console tables + CSV output for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-oriented result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. "e1".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of formatted cells (same arity as `columns`).
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes rendered after the rows (CSV comment lines).
    pub notes: Vec<String>,
}

impl Table {
    /// An empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn note(&mut self, text: String) {
        self.notes.push(text);
    }

    /// Render for the console with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let hdr: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", hdr.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(hdr.join("  ").len()));
        for r in &self.rows {
            let line: Vec<String> =
                r.iter().enumerate().map(|(i, c)| format!("{:>w$}", c, w = widths[i])).collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  {n}");
        }
        out
    }

    /// Write `results/<id>.csv` under `dir`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.join(","));
        }
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        fs::write(dir.join(format!("{}.csv", self.id)), out)
    }
}

/// Format nanoseconds as microseconds with 2 decimals.
pub fn us(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1000.0)
}

/// Format a bytes/second rate as GB/s with 2 decimals.
pub fn gbps(bytes_per_sec: f64) -> String {
    format!("{:.2}", bytes_per_sec / 1e9)
}

/// Format an ops/second rate as Mops/s with 3 decimals.
pub fn mops(ops_per_sec: f64) -> String {
    format!("{:.3}", ops_per_sec / 1e6)
}

/// Human size label ("8B", "4KiB", "2MiB").
pub fn size_label(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}MiB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KiB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("e0", "demo", &["size", "value"]);
        t.row(vec!["8B".into(), "1.25".into()]);
        t.row(vec!["4KiB".into(), "100.00".into()]);
        let s = t.render();
        assert!(s.contains("e0"));
        assert!(s.contains("4KiB"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn csv_written() {
        let dir = std::env::temp_dir().join("photon-bench-test");
        let mut t = Table::new("e0csv", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.write_csv(&dir).unwrap();
        let got = std::fs::read_to_string(dir.join("e0csv.csv")).unwrap();
        assert_eq!(got, "a,b\n1,2\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(us(1500), "1.50");
        assert_eq!(gbps(7e9), "7.00");
        assert_eq!(mops(2_500_000.0), "2.500");
        assert_eq!(size_label(8), "8B");
        assert_eq!(size_label(4096), "4KiB");
        assert_eq!(size_label(2 << 20), "2MiB");
    }
}
