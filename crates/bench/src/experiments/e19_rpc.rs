//! E19 — RPC invocation throughput: many clients, one server.
//!
//! Every client rank hammers a single KV server rank with blocking `kv.put`
//! invocations, sweeping the client count and the delivery policy. The
//! interesting comparisons:
//!
//! * **fan-in scaling** — how call throughput grows (or saturates) as more
//!   client ranks share one server's parcel pump;
//! * **policy overhead** — what at-most-once's sequence numbering and
//!   server-side dedup-window bookkeeping cost relative to maybe /
//!   at-least-once on a clean fabric, where every policy behaves
//!   identically on the wire (one attempt, one reply);
//! * **round-trip latency** — client-observed p50/p99 per call from the
//!   per-method latency bank, against the server-side handler-only view.
//!
//! Unlike the virtual-time experiments, RPC round trips are measured in
//! wall-clock time (the client blocks on a real condvar for the reply
//! parcel), so absolute rates are host-dependent; the *shape* — scaling
//! curve and policy deltas — is the result.

use crate::report::{us, Table};
use photon_fabric::NetworkModel;
use photon_runtime::rpc::kv::{serve_kv, KvPut};
use photon_runtime::{ActionRegistry, RpcOptions, RtConfig, RuntimeCluster};
use std::time::{Duration, Instant};

/// Calls each client issues per row. Small enough to keep the full sweep in
/// bench budget, large enough that per-call percentiles are populated.
const CALLS_PER_CLIENT: usize = 300;

/// One row: `clients` ranks invoking `kv.put` on rank 0 under `opts`.
/// Returns (calls/s, client p50 ns, client p99 ns, server executions).
fn fan_in(clients: usize, opts: RpcOptions, calls: usize) -> (f64, u64, u64, u64) {
    let cfg = RtConfig { workers: 1, ..RtConfig::default() };
    let c = RuntimeCluster::new(clients + 1, NetworkModel::ib_fdr(), cfg, ActionRegistry::new());
    let store = serve_kv(c.node(0));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for r in 1..=clients {
            let c = &c;
            s.spawn(move || {
                let client = c.node(r).rpc_client(0);
                for i in 0..calls {
                    let key = vec![r as u8, (i >> 8) as u8, i as u8];
                    let token = (r * calls + i) as u64 + 1;
                    client.call::<KvPut>(&(key, vec![0xAB; 16], token), opts).unwrap();
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    let total = (clients * calls) as u64;
    assert_eq!(store.len() as u64, total, "every put must have landed");
    // Client-observed round trip, from rank 1's method-keyed bank (all
    // client ranks see statistically identical paths to rank 0).
    let rt = c.node(1).rpc_latency().summary_of("kv.put").expect("client recorded round trips");
    let execs = c.node(0).rpc_stats().srv_executed;
    c.shutdown();
    (total as f64 / secs, rt.p50_ns, rt.p99_ns, execs)
}

/// The policy sweep: identical wire behavior on a clean fabric, so deltas
/// are pure client/server bookkeeping cost.
fn policies() -> [(&'static str, RpcOptions); 3] {
    let t = Duration::from_secs(5); // generous: no faults, no retries expected
    [
        ("maybe", RpcOptions::maybe().with_timeout(t)),
        ("at-least-once", RpcOptions::at_least_once().with_timeout(t)),
        ("at-most-once", RpcOptions::at_most_once().with_timeout(t)),
    ]
}

/// Run the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e19",
        "RPC fan-in: kv.put calls/s vs client count and delivery policy",
        &["clients", "policy", "kcalls_s", "rt_p50", "rt_p99", "srv_execs"],
    );
    for clients in [1usize, 2, 4, 8] {
        for (name, opts) in policies() {
            let (rate, p50, p99, execs) = fan_in(clients, opts, CALLS_PER_CLIENT);
            t.row(vec![
                clients.to_string(),
                name.to_string(),
                format!("{:.1}", rate / 1e3),
                us(p50),
                us(p99),
                execs.to_string(),
            ]);
        }
    }
    t.note(format!("{CALLS_PER_CLIENT} calls per client; wall-clock rates (host-dependent)"));
    t.note("clean fabric: srv_execs == clients x calls under every policy".to_string());
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_in_executes_every_call_exactly_once() {
        let (_, opts) = policies()[2]; // at-most-once
        let (rate, p50, p99, execs) = fan_in(2, opts, 40);
        assert!(rate > 0.0);
        assert_eq!(execs, 80, "clean fabric: one execution per call");
        assert!(p50 > 0 && p99 >= p50);
    }

    #[test]
    fn policies_agree_on_outcome_under_a_clean_fabric() {
        for (name, opts) in policies() {
            let (_, _, _, execs) = fan_in(1, opts, 25);
            assert_eq!(execs, 25, "policy {name} must execute each call once");
        }
    }
}
