//! Shared measurement drivers used by several experiments.
//!
//! All drivers return **virtual-time** nanoseconds measured on the modeled
//! fabric. Patterns are causal chains, so the results are deterministic for
//! a given configuration.

use photon_core::{PhotonCluster, PhotonConfig, PutManyItem, StatsSnapshot};
use photon_fabric::NetworkModel;
use photon_msg::{MsgCluster, MsgConfig};

/// Half-round-trip (one-way) latency of a Photon PWC ping-pong at `size`
/// bytes, averaged over `iters` round trips.
pub fn photon_pingpong_ns(
    model: NetworkModel,
    cfg: PhotonConfig,
    size: usize,
    iters: usize,
) -> u64 {
    let c = PhotonCluster::new(2, model, cfg);
    let (p0, p1) = (c.rank(0), c.rank(1));
    let b0 = p0.register_buffer(size.max(8)).unwrap();
    let b1 = p1.register_buffer(size.max(8)).unwrap();
    let d0 = b0.descriptor();
    let d1 = b1.descriptor();
    c.reset_time(); // exclude registration from the latency figure
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..iters as u64 {
                p0.put_with_completion(1, &b0, 0, size, &d1, 0, i, i).unwrap();
                p0.wait_local(i).unwrap();
                p0.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
                // the pong
            }
        });
        s.spawn(|| {
            for i in 0..iters as u64 {
                p1.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap(); // the ping
                p1.put_with_completion(0, &b1, 0, size, &d0, 0, i, i).unwrap();
                p1.wait_local(i).unwrap();
            }
        });
    });
    p0.now().as_nanos() / (2 * iters as u64)
}

/// Half-round-trip latency of a two-sided send/recv ping-pong.
pub fn msg_pingpong_ns(model: NetworkModel, cfg: MsgConfig, size: usize, iters: usize) -> u64 {
    let c = MsgCluster::new(2, model, cfg);
    let (e0, e1) = (c.rank(0), c.rank(1));
    let payload = vec![0u8; size];
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..iters as u64 {
                e0.send(1, &payload, i).unwrap();
                e0.recv(Some(1), Some(i)).unwrap();
            }
        });
        s.spawn(|| {
            for i in 0..iters as u64 {
                e1.recv(Some(0), Some(i)).unwrap();
                e1.send(0, &payload, i).unwrap();
            }
        });
    });
    c.rank(0).now().as_nanos() / (2 * iters as u64)
}

/// Streaming put bandwidth (bytes/s): `count` puts of `size` from rank 0 to
/// rank 1, consumer probing concurrently; time is the consumer's last
/// remote-completion timestamp.
pub fn photon_put_bw(model: NetworkModel, cfg: PhotonConfig, size: usize, count: usize) -> f64 {
    let c = PhotonCluster::new(2, model, cfg);
    let (p0, p1) = (c.rank(0), c.rank(1));
    let b0 = p0.register_buffer(size).unwrap();
    let b1 = p1.register_buffer(size).unwrap();
    let d1 = b1.descriptor();
    c.reset_time();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..count as u64 {
                p0.put_with_completion(1, &b0, 0, size, &d1, 0, i, i).unwrap();
            }
        });
        s.spawn(|| {
            for _ in 0..count {
                p1.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
            }
        });
    });
    (size * count) as f64 / (p1.now().as_nanos() as f64 / 1e9)
}

/// Streaming get bandwidth (bytes/s): rank 0 pulls `count` blocks of `size`
/// from rank 1.
pub fn photon_get_bw(model: NetworkModel, cfg: PhotonConfig, size: usize, count: usize) -> f64 {
    let c = PhotonCluster::new(2, model, cfg);
    let (p0, p1) = (c.rank(0), c.rank(1));
    let b0 = p0.register_buffer(size).unwrap();
    let b1 = p1.register_buffer(size).unwrap();
    let d1 = b1.descriptor();
    c.reset_time();
    // Window of 16 outstanding gets.
    let window = 16u64;
    for i in 0..count as u64 {
        p0.get_with_completion(1, &b0, 0, size, &d1, 0, i).unwrap();
        if i >= window {
            p0.wait_local(i - window).unwrap();
        }
    }
    for i in count as u64 - window.min(count as u64)..count as u64 {
        p0.wait_local(i).unwrap();
    }
    (size * count) as f64 / (p0.now().as_nanos() as f64 / 1e9)
}

/// Streaming two-sided bandwidth with pre-registered buffers (zero-copy
/// rendezvous for large sizes).
pub fn msg_stream_bw(model: NetworkModel, cfg: MsgConfig, size: usize, count: usize) -> f64 {
    let c = MsgCluster::new(2, model, cfg);
    let (e0, e1) = (c.rank(0), c.rank(1));
    let sbuf = e0.register_buffer(size).unwrap();
    let rbuf = e1.register_buffer(size).unwrap();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..count as u64 {
                e0.send_from(1, &sbuf, 0, size, i).unwrap();
            }
        });
        s.spawn(|| {
            for i in 0..count as u64 {
                e1.recv_into(&rbuf, 0, size, Some(0), Some(i)).unwrap();
            }
        });
    });
    (size * count) as f64 / (c.rank(1).now().as_nanos() as f64 / 1e9)
}

/// Acked message rate (msgs/s) for 8-byte PWC puts with `window` outstanding
/// un-acked messages.
pub fn photon_msg_rate(model: NetworkModel, cfg: PhotonConfig, window: usize, msgs: usize) -> f64 {
    let c = PhotonCluster::new(2, model, cfg);
    let (p0, p1) = (c.rank(0), c.rank(1));
    let b0 = p0.register_buffer(8).unwrap();
    let b1 = p1.register_buffer(8).unwrap();
    let d1 = b1.descriptor();
    let d0 = b0.descriptor();
    c.reset_time();
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut sent = 0u64;
            let mut acked = 0u64;
            while sent < window.min(msgs) as u64 {
                p0.put_with_completion(1, &b0, 0, 8, &d1, 0, sent, sent).unwrap();
                sent += 1;
            }
            while acked < msgs as u64 {
                p0.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap(); // an ack
                acked += 1;
                if sent < msgs as u64 {
                    p0.put_with_completion(1, &b0, 0, 8, &d1, 0, sent, sent).unwrap();
                    sent += 1;
                }
            }
        });
        s.spawn(|| {
            for i in 0..msgs as u64 {
                p1.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
                // 0-byte ack riding the eager path.
                p1.put_with_completion(0, &b1, 0, 0, &d0, 0, i, i).unwrap();
            }
        });
    });
    msgs as f64 / (p0.now().as_nanos() as f64 / 1e9)
}

/// Acked message rate for 8-byte puts posted in doorbell-batched chunks of
/// `window` through `put_many` (acks stay per-item, so the comparison with
/// [`photon_msg_rate`] isolates the TX batching). Also returns the sender's
/// stats snapshot so callers can surface the batch counters.
pub fn photon_msg_rate_batched(
    model: NetworkModel,
    cfg: PhotonConfig,
    window: usize,
    msgs: usize,
) -> (f64, StatsSnapshot) {
    let c = PhotonCluster::new(2, model, cfg);
    let (p0, p1) = (c.rank(0), c.rank(1));
    let b0 = p0.register_buffer(8).unwrap();
    let b1 = p1.register_buffer(8).unwrap();
    let d1 = b1.descriptor();
    let d0 = b0.descriptor();
    c.reset_time();
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut sent = 0u64;
            let mut acked = 0u64;
            while acked < msgs as u64 {
                let k = (msgs as u64 - sent).min(window as u64) as usize;
                if k > 0 {
                    let items: Vec<PutManyItem> = (0..k as u64)
                        .map(|j| PutManyItem {
                            loff: 0,
                            len: 8,
                            doff: 0,
                            local_rid: sent + j,
                            remote_rid: sent + j,
                        })
                        .collect();
                    p0.put_many(1, &b0, &d1, &items).unwrap();
                    sent += k as u64;
                }
                for _ in 0..k.max(1) {
                    p0.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap(); // an ack
                    acked += 1;
                }
            }
        });
        s.spawn(|| {
            for i in 0..msgs as u64 {
                p1.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
                // 0-byte ack riding the eager path.
                p1.put_with_completion(0, &b1, 0, 0, &d0, 0, i, i).unwrap();
            }
        });
    });
    (msgs as f64 / (p0.now().as_nanos() as f64 / 1e9), p0.stats())
}

/// Acked message rate for the two-sided baseline (8-byte sends, tag-matched
/// acks, `window` outstanding).
pub fn msg_msg_rate(model: NetworkModel, cfg: MsgConfig, window: usize, msgs: usize) -> f64 {
    let c = MsgCluster::new(2, model, cfg);
    let (e0, e1) = (c.rank(0), c.rank(1));
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut sent = 0u64;
            let mut acked = 0u64;
            while sent < window.min(msgs) as u64 {
                e0.send(1, &[0u8; 8], sent).unwrap();
                sent += 1;
            }
            while acked < msgs as u64 {
                e0.recv(Some(1), Some(acked)).unwrap();
                acked += 1;
                if sent < msgs as u64 {
                    e0.send(1, &[0u8; 8], sent).unwrap();
                    sent += 1;
                }
            }
        });
        s.spawn(|| {
            for i in 0..msgs as u64 {
                e1.recv(Some(0), Some(i)).unwrap();
                e1.send(0, &[], i).unwrap();
            }
        });
    });
    msgs as f64 / (c.rank(0).now().as_nanos() as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pingpong_latency_in_model_ballpark() {
        let m = NetworkModel::ib_fdr();
        let lat = photon_pingpong_ns(m, PhotonConfig::default(), 8, 10);
        // One-way for 8B is >= o + L and well under 5 us on modeled FDR.
        assert!(lat >= m.send_overhead_ns + m.latency_ns, "{lat}");
        assert!(lat < 5_000, "{lat}");
        let msg_lat = msg_pingpong_ns(m, MsgConfig::default(), 8, 10);
        assert!(msg_lat >= lat, "two-sided ({msg_lat}) >= one-sided ({lat})");
    }

    #[test]
    fn put_bandwidth_approaches_line_rate() {
        let m = NetworkModel::ib_fdr();
        let bw = photon_put_bw(m, PhotonConfig::default(), 1 << 20, 32);
        let line = m.bandwidth_bytes_per_sec() as f64;
        assert!(bw > 0.8 * line, "bw {bw} vs line {line}");
        assert!(bw <= 1.05 * line);
    }

    #[test]
    fn message_rate_grows_with_window() {
        let m = NetworkModel::ib_fdr();
        let r1 = photon_msg_rate(m, PhotonConfig::default(), 1, 200);
        let r64 = photon_msg_rate(m, PhotonConfig::default(), 64, 2000);
        assert!(r64 > 3.0 * r1, "window must lift rate: {r1} -> {r64}");
    }
}
