//! E3 — small-message rate vs window (acked 8-byte messages).
//!
//! Reconstructed expectation: rate scales with the window until the NIC
//! message-gap ceiling; Photon's single-op eager path reaches a higher
//! ceiling than matched two-sided messaging. The `photon_batched` column
//! posts each window as one doorbell-batched `put_many` run, paying the
//! injection overhead once per batch; its TX batching counters are surfaced
//! as table footnotes.

use super::drivers;
use crate::report::{mops, Table};
use photon_core::PhotonConfig;
use photon_fabric::NetworkModel;
use photon_msg::MsgConfig;

/// Run the experiment.
pub fn run() -> Table {
    let model = NetworkModel::ib_fdr();
    let mut t = Table::new(
        "e3",
        "8-byte acked message rate vs window (Mmsg/s)",
        &["window", "photon_pwc", "baseline", "photon_batched"],
    );
    let mut last_stats = None;
    for window in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let msgs = (window * 100).clamp(500, 8000);
        let p = drivers::photon_msg_rate(model, PhotonConfig::default(), window, msgs);
        let b = drivers::msg_msg_rate(model, MsgConfig::default(), window, msgs);
        let (pb, s) =
            drivers::photon_msg_rate_batched(model, PhotonConfig::default(), window, msgs);
        t.row(vec![window.to_string(), mops(p), mops(b), mops(pb)]);
        last_stats = Some((window, s));
    }
    if let Some((window, s)) = last_stats {
        t.note(format!(
            "tx batching at w{window}: batch_posts={} frames/batch 1|2-4|5-16|17+ = {}|{}|{}|{} stage_copies_avoided={}",
            s.batch_posts,
            s.frames_per_batch_1,
            s.frames_per_batch_2_4,
            s.frames_per_batch_5_16,
            s.frames_per_batch_17plus,
            s.stage_copies_avoided,
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn shape_rate_scales_then_saturates() {
        let t = super::run();
        let parse = |s: &str| s.parse::<f64>().unwrap();
        let r1 = parse(&t.rows[0][1]);
        let r_mid = parse(&t.rows[4][1]);
        let r_max = parse(&t.rows.last().unwrap()[1]);
        assert!(r_mid > 2.0 * r1, "rate should scale with window");
        // Saturation: the last doubling gains little.
        let r_prev = parse(&t.rows[t.rows.len() - 2][1]);
        assert!(r_max < 1.5 * r_prev, "rate should saturate");
    }
}
