//! E13 — completion-delivery ablation: ledger entries vs
//! write-with-immediate CQ events for direct puts.
//!
//! The CQ-notification design merges the data and the completion into one
//! wire operation, so its direct-put latency beats the two-op ledger path.
//! The price is flow control: ledgers bound the producer with explicit
//! credits, while the imm mode is only as safe as the consumer's CQ depth
//! (`photon-core` unit tests demonstrate the overflow). This experiment
//! quantifies the latency side of that trade.

use crate::report::{size_label, us, Table};
use photon_core::{PhotonCluster, PhotonConfig};
use photon_fabric::NetworkModel;

fn direct_pingpong_ns(imm: bool, size: usize, iters: usize) -> u64 {
    let cfg = PhotonConfig {
        eager_threshold: 0, // force the direct path at every size
        imm_completions: imm,
        ..PhotonConfig::default()
    };
    let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), cfg);
    let (p0, p1) = (c.rank(0), c.rank(1));
    let b0 = p0.register_buffer(size).unwrap();
    let b1 = p1.register_buffer(size).unwrap();
    let d0 = b0.descriptor();
    let d1 = b1.descriptor();
    c.reset_time();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..iters as u64 {
                p0.put_with_completion(1, &b0, 0, size, &d1, 0, i, i).unwrap();
                p0.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
            }
        });
        s.spawn(|| {
            for i in 0..iters as u64 {
                p1.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
                p1.put_with_completion(0, &b1, 0, size, &d0, 0, i, i).unwrap();
            }
        });
    });
    c.rank(0).now().as_nanos() / (2 * iters as u64)
}

/// Run the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e13",
        "direct-put one-way latency: ledger vs imm completion (us)",
        &["size", "ledger_us", "imm_us", "imm_saves"],
    );
    for exp in [3usize, 8, 12, 14, 16] {
        let size = 1usize << exp;
        let ledger = direct_pingpong_ns(false, size, 40);
        let imm = direct_pingpong_ns(true, size, 40);
        t.row(vec![
            size_label(size),
            us(ledger),
            us(imm),
            format!("{}ns", ledger.saturating_sub(imm)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn imm_mode_saves_the_second_wire_op() {
        let ledger = super::direct_pingpong_ns(false, 8, 20);
        let imm = super::direct_pingpong_ns(true, 8, 20);
        // The ledger path pays one extra gap-limited injection per one-way.
        assert!(imm < ledger, "imm {imm} must beat ledger {ledger}");
        let saved = ledger - imm;
        assert!(
            (10..200).contains(&saved),
            "saving should be about one message gap, got {saved}ns"
        );
    }
}
