//! E4 — eager/rendezvous crossover: PWC latency vs size for different eager
//! thresholds.
//!
//! Reconstructed expectation: below the threshold the packed eager path
//! (one wire op + probe-time copy) wins; above it the direct path (two wire
//! ops, zero copy) wins. The copy cost makes eager *lose* for large
//! payloads, so each threshold column crosses the direct column near the
//! point where copy time ≈ one ledger write.

use super::drivers;
use crate::report::{size_label, us, Table};
use photon_core::PhotonConfig;
use photon_fabric::NetworkModel;

/// Run the experiment.
pub fn run() -> Table {
    let model = NetworkModel::ib_fdr();
    let mut t = Table::new(
        "e4",
        "PWC one-way latency vs size per eager threshold (us)",
        &["size", "direct_only", "eager_1KiB", "eager_8KiB", "eager_64KiB"],
    );
    let thresholds = [0usize, 1 << 10, 8 << 10, 64 << 10];
    let iters = 40;
    for exp in [6usize, 8, 10, 12, 13, 14, 16] {
        let size = 1usize << exp;
        let mut row = vec![size_label(size)];
        for th in thresholds {
            let cfg = PhotonConfig {
                eager_threshold: th,
                eager_ring_bytes: 512 * 1024,
                ..PhotonConfig::default()
            };
            row.push(us(drivers::photon_pingpong_ns(model, cfg, size, iters)));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn shape_eager_wins_small_direct_wins_large() {
        let t = super::run();
        let parse = |s: &str| s.parse::<f64>().unwrap();
        // 64B row: the 1KiB-threshold (eager) path beats direct-only.
        let small = &t.rows[0];
        assert!(
            parse(&small[2]) < parse(&small[1]),
            "eager should win at 64B: {} vs {}",
            small[2],
            small[1]
        );
        // 64KiB row: direct beats the 64KiB-threshold (still-eager) path.
        let large = t.rows.last().unwrap();
        assert!(
            parse(&large[1]) < parse(&large[4]),
            "direct should win at 64KiB: {} vs {}",
            large[1],
            large[4]
        );
    }
}
