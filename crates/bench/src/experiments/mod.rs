//! One module per reconstructed figure/table. Each exposes
//! `run() -> Table`; the `figures` binary dispatches by id.

pub mod drivers;
pub mod e10_ledger;
pub mod e11_model;
pub mod e12_regcache;
pub mod e13_imm;
pub mod e14_coalesce;
pub mod e15_fabrics;
pub mod e16_locality;
pub mod e17_failure;
pub mod e18_attribution;
pub mod e19_rpc;
pub mod e1_latency;
pub mod e2_bandwidth;
pub mod e3_msgrate;
pub mod e4_crossover;
pub mod e5_probe;
pub mod e6_collectives;
pub mod e7_overlap;
pub mod e8_apps;

use crate::report::Table;

/// All experiment ids, in presentation order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8a", "e8b", "e8c", "e10", "e11", "e12", "e13",
    "e14", "e15", "e16", "e17", "e18", "e19",
];

/// Run one experiment by id.
pub fn run(id: &str) -> Option<Table> {
    Some(match id {
        "e1" => e1_latency::run(),
        "e2" => e2_bandwidth::run(),
        "e3" => e3_msgrate::run(),
        "e4" => e4_crossover::run(),
        "e5" => e5_probe::run(),
        "e6" => e6_collectives::run(),
        "e7" => e7_overlap::run(),
        "e8a" => e8_apps::run_gups(),
        "e8b" => e8_apps::run_stencil(),
        "e8c" => e8_apps::run_parcel_rate(),
        "e10" => e10_ledger::run(),
        "e11" => e11_model::run(),
        "e12" => e12_regcache::run(),
        "e13" => e13_imm::run(),
        "e14" => e14_coalesce::run(),
        "e15" => e15_fabrics::run(),
        "e16" => e16_locality::run(),
        "e17" => e17_failure::run(),
        "e18" => e18_attribution::run(),
        "e19" => e19_rpc::run(),
        _ => return None,
    })
}

/// A Photon config sized for large-rank-count experiments (keeps the
/// per-pair service memory small).
pub fn compact_photon_config() -> photon_core::PhotonConfig {
    photon_core::PhotonConfig {
        ledger_entries: 64,
        eager_ring_bytes: 16 * 1024,
        coll_slot_bytes: 4 * 1024,
        eager_threshold: 4096,
        ..photon_core::PhotonConfig::default()
    }
}

/// The matching compact baseline config.
pub fn compact_msg_config() -> photon_msg::MsgConfig {
    photon_msg::MsgConfig {
        pool_slots: 64,
        eager_threshold: 4096,
        ..photon_msg::MsgConfig::default()
    }
}
