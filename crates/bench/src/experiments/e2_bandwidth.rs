//! E2 — bandwidth vs message size (put / get / two-sided).
//!
//! Reconstructed expectation: one-sided puts saturate the modeled 7 GB/s
//! link earliest; gets pay a request round trip but pipeline under a window;
//! the two-sided baseline trails until its rendezvous amortizes.

use super::drivers;
use crate::report::{gbps, size_label, Table};
use photon_core::PhotonConfig;
use photon_fabric::NetworkModel;
use photon_msg::MsgConfig;

/// Run the experiment.
pub fn run() -> Table {
    let model = NetworkModel::ib_fdr();
    let mut t = Table::new(
        "e2",
        "bandwidth vs size, modeled FDR IB (GB/s)",
        &["size", "photon_put", "photon_get", "baseline_sendrecv"],
    );
    for exp in [10usize, 12, 14, 16, 18, 20, 22] {
        let size = 1usize << exp;
        let count = ((64 << 20) / size).clamp(16, 4096);
        let put = drivers::photon_put_bw(model, PhotonConfig::default(), size, count);
        let get = drivers::photon_get_bw(model, PhotonConfig::default(), size, count);
        let two = drivers::msg_stream_bw(model, MsgConfig::default(), size, count);
        t.row(vec![size_label(size), gbps(put), gbps(get), gbps(two)]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn shape_bandwidth_saturates() {
        let t = super::run();
        let parse = |s: &str| s.parse::<f64>().unwrap();
        let first_put = parse(&t.rows[0][1]);
        let last_put = parse(&t.rows.last().unwrap()[1]);
        assert!(last_put > first_put, "bandwidth grows with size");
        assert!(last_put > 5.5, "large puts near the 7 GB/s line: {last_put}");
        let last_two = parse(&t.rows.last().unwrap()[3]);
        assert!(last_two > 3.0, "baseline also reaches high bandwidth eventually");
    }
}
