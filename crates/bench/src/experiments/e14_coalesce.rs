//! E14 — parcel-coalescing ablation: delivery rate vs batch size.
//!
//! Fine-grained runtimes live or die on small-message rate; coalescing
//! trades first-parcel latency for amortized injection. Expected shape:
//! rate climbs steeply with batch size until the eager ring's byte
//! bandwidth (not its message rate) becomes the binding constraint.

use crate::report::{mops, Table};
use photon_fabric::NetworkModel;
use photon_runtime::{ActionRegistry, RtConfig, RuntimeCluster};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn rate(coalesce_max: usize, count: usize, payload: usize) -> f64 {
    let mut reg = ActionRegistry::new();
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    let sink = reg.register("sink", move |_ctx, _| {
        seen2.fetch_add(1, Ordering::Relaxed);
        None
    });
    let cfg = RtConfig { workers: 1, coalesce_max, ..RtConfig::default() };
    let c = RuntimeCluster::new(2, NetworkModel::ib_fdr(), cfg, reg);
    let body = vec![0u8; payload];
    let n0 = c.node(0);
    for _ in 0..count {
        n0.send_parcel(1, sink, &body).unwrap();
    }
    n0.flush_parcels().unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while seen.load(Ordering::Relaxed) < count as u64 {
        assert!(Instant::now() < deadline, "parcels never drained");
        std::thread::yield_now();
    }
    let t_ns = c.node(1).photon().now().as_nanos();
    c.shutdown();
    count as f64 / (t_ns as f64 / 1e9)
}

/// Run the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e14",
        "16-byte parcel rate vs coalescing batch size (Mparcels/s)",
        &["batch", "rate_mparcels"],
    );
    for batch in [1usize, 4, 16, 64, 128] {
        t.row(vec![batch.to_string(), mops(rate(batch, 4000, 16))]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn coalescing_lifts_parcel_rate() {
        let off = super::rate(1, 1500, 16);
        let on = super::rate(64, 1500, 16);
        assert!(on > 1.5 * off, "batching should lift the rate substantially: {off} -> {on}");
    }
}
