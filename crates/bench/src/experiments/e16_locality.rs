//! E16 — topology locality: collectives under pod oversubscription.
//!
//! On a flat crossbar, rank placement is irrelevant. Under a two-level
//! topology with oversubscribed uplinks, cross-pod rounds of a collective
//! serialize on the shared links; the gap between flat and oversubscribed
//! runs is the price of ignoring locality that paper-era middleware had to
//! reason about.

use crate::report::{us, Table};
use photon_core::PhotonCluster;
use photon_fabric::{NetworkModel, PodTopology};

fn alltoall_ns(n: usize, block: usize, topo: Option<PodTopology>) -> u64 {
    let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), super::compact_photon_config());
    if let Some(t) = topo {
        c.fabric().switch().set_topology(t);
    }
    std::thread::scope(|s| {
        for p in c.ranks() {
            s.spawn(move || {
                let send = vec![p.rank() as u8; n * block];
                let mut recv = vec![0u8; n * block];
                p.alltoall(&send, &mut recv).unwrap();
            });
        }
    });
    c.ranks().iter().map(|p| p.now().as_nanos()).max().unwrap()
}

/// Run the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e16",
        "8-rank all-to-all (2KiB blocks) vs pod oversubscription (us)",
        &["topology", "alltoall_us", "slowdown"],
    );
    let n = 8;
    let block = 2048;
    let flat = alltoall_ns(n, block, None);
    t.row(vec!["flat".into(), us(flat), "1.00x".into()]);
    for over in [1u64, 2, 4, 8] {
        let topo = PodTopology { pod_size: 4, oversubscription: over, core_latency_ns: 300 };
        let v = alltoall_ns(n, block, Some(topo));
        t.row(vec![format!("pods4_over{over}"), us(v), format!("{:.2}x", v as f64 / flat as f64)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use photon_fabric::PodTopology;

    #[test]
    fn oversubscription_slows_cross_pod_alltoall() {
        let flat = super::alltoall_ns(8, 2048, None);
        let over4 = super::alltoall_ns(
            8,
            2048,
            Some(PodTopology { pod_size: 4, oversubscription: 4, core_latency_ns: 300 }),
        );
        assert!(over4 > flat * 2, "4x oversubscription must hurt an all-to-all: {flat} -> {over4}");
        // Non-blocking pods (over=1) stay close to flat (core hop only).
        let over1 = super::alltoall_ns(
            8,
            2048,
            Some(PodTopology { pod_size: 4, oversubscription: 1, core_latency_ns: 300 }),
        );
        assert!(over1 < flat * 2, "{flat} -> {over1}");
    }
}
