//! E10 — ledger-depth ablation: direct-PWC throughput under a slow
//! consumer, as a function of ledger slots.
//!
//! Design-choice check for the credit-based ledger: with a consumer that
//! probes slowly (models a busy runtime), a shallow ledger starves the
//! producer on credits; depth buys back throughput until the
//! latency×rate product is covered.

use crate::report::{mops, Table};
use photon_core::{PhotonCluster, PhotonConfig};
use photon_fabric::NetworkModel;

fn throughput(depth: usize, msgs: usize, consumer_work_ns: u64) -> f64 {
    let cfg = PhotonConfig {
        eager_threshold: 0, // force the ledger (direct) path
        ledger_entries: depth,
        credit_interval: depth / 2,
        ..PhotonConfig::default()
    };
    let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), cfg);
    let (p0, p1) = (c.rank(0), c.rank(1));
    let b0 = p0.register_buffer(8).unwrap();
    let b1 = p1.register_buffer(8).unwrap();
    let d1 = b1.descriptor();
    c.reset_time();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..msgs as u64 {
                p0.put_with_completion(1, &b0, 0, 8, &d1, 0, i, i).unwrap();
            }
            // Drain to the final injection so the producer-side time is
            // well-defined even when the ledger never backpressured.
            p0.wait_local(msgs as u64 - 1).unwrap();
        });
        s.spawn(|| {
            for _ in 0..msgs {
                p1.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
                p1.elapse(consumer_work_ns); // busy runtime between probes
            }
        });
    });
    // Producer-side time: a shallow ledger chains the producer to the slow
    // consumer through credit stalls; a deep one lets it run ahead.
    msgs as f64 / (p0.now().as_nanos() as f64 / 1e9)
}

/// Run the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e10",
        "direct-PWC throughput vs ledger depth, slow consumer (Mops/s)",
        &["ledger_slots", "throughput_mops"],
    );
    for depth in [8usize, 16, 32, 64, 128, 256, 512, 1024] {
        t.row(vec![depth.to_string(), mops(throughput(depth, 1500, 200))]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn deeper_ledger_recovers_throughput() {
        let shallow = super::throughput(8, 1000, 200);
        let deep = super::throughput(512, 1000, 200);
        assert!(
            deep > 1.3 * shallow,
            "depth should buy throughput under a slow consumer: {shallow} -> {deep}"
        );
    }
}
