//! E15 — fabric portability: the same middleware over the three modeled
//! interconnects (the verbs/uGNI/sockets backend story).
//!
//! Photon's pitch includes running unchanged over InfiniBand verbs, Cray
//! uGNI, and sockets. Here the identical protocol stack runs over the three
//! model presets; latencies scale with the fabric constants while the
//! protocol behaviour (eager/direct split, credits) is unchanged.

use super::drivers;
use crate::report::{size_label, us, Table};
use photon_core::PhotonConfig;
use photon_fabric::NetworkModel;
use photon_msg::MsgConfig;

/// Run the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e15",
        "PWC one-way latency across fabric models (us)",
        &["size", "ib_fdr", "gemini", "eth10g", "eth_vs_ib", "baseline_ib"],
    );
    let fabrics =
        [NetworkModel::ib_fdr(), NetworkModel::cray_gemini(), NetworkModel::ethernet_10g()];
    for exp in [3usize, 10, 13, 16] {
        let size = 1usize << exp;
        let lat: Vec<u64> = fabrics
            .iter()
            .map(|&m| drivers::photon_pingpong_ns(m, PhotonConfig::default(), size, 30))
            .collect();
        let base_ib = drivers::msg_pingpong_ns(fabrics[0], MsgConfig::default(), size, 30);
        t.row(vec![
            size_label(size),
            us(lat[0]),
            us(lat[1]),
            us(lat[2]),
            format!("{:.1}x", lat[2] as f64 / lat[0] as f64),
            us(base_ib),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn fabric_ordering_holds_at_all_sizes() {
        let t = super::run();
        let parse = |s: &str| s.parse::<f64>().unwrap();
        for row in &t.rows {
            let (ib, gm, et) = (parse(&row[1]), parse(&row[2]), parse(&row[3]));
            assert!(ib < gm && gm < et, "fabric ordering violated: {row:?}");
        }
        // Small messages: Ethernet is latency-dominated, ~20x slower than IB.
        let small_ratio = t.rows[0][4].trim_end_matches('x').parse::<f64>().unwrap();
        assert!(small_ratio > 10.0, "{small_ratio}");
        // Large messages: bandwidth-dominated, the gap narrows.
        let large_ratio = t.rows.last().unwrap()[4].trim_end_matches('x').parse::<f64>().unwrap();
        assert!(large_ratio < small_ratio);
    }
}
