//! E17 — peer-failure detection and recovery vs reconnection backoff.
//!
//! A partitioned link drives the per-peer health machine Healthy → Suspect
//! → (Dead | recovered). The backoff base sets the probe cadence and thus
//! both ends of the trade:
//!
//! * **death detect** — with a permanent partition, time from the outage's
//!   onset until the peer is declared Dead and pending ops flush as error
//!   completions (`suspect_deadline` + the full exponential probe ladder);
//! * **heal recover** — with a 500 us outage window, how far past the heal
//!   instant the first successful transfer lands (backoff overshoot).
//!
//! Aggressive probing declares death quickly and hugs the heal instant but
//! spends probes; a lazy ladder is cheap yet can overshoot a healed link by
//! more than the outage itself. Both figures are virtual-time, so the table
//! is deterministic.

use crate::report::{us, Table};
use photon_core::{PhotonCluster, PhotonConfig, PhotonError};
use photon_fabric::{NetworkModel, VTime, Window};

/// Outage starts here (after a healthy warm-up transfer).
const FROM_NS: u64 = 50_000;
/// Heal instant for the windowed (recoverable) outage.
const UNTIL_NS: u64 = 550_000;

fn cluster_with(backoff_base_ns: u64, until_ns: u64) -> PhotonCluster {
    let cfg = PhotonConfig { backoff_base_ns, ..super::compact_photon_config() };
    let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), cfg);
    c.fabric().switch().faults().partition_during(
        0,
        1,
        Window::new(VTime(FROM_NS), VTime(until_ns)),
    );
    c
}

/// Warm up the link, step to the outage, and issue the put that trips the
/// health machine. Returns the virtual timestamp when the put resolved
/// (success after heal, or `PeerDead`) plus whether it died.
fn outage_put(c: &PhotonCluster) -> (u64, bool) {
    let (p0, p1) = (c.rank(0), c.rank(1));
    let b0 = p0.register_buffer(64).unwrap();
    let b1 = p1.register_buffer(64).unwrap();
    let d1 = b1.descriptor();
    c.reset_time(); // registration is not part of the outage timeline
    p0.put_with_completion(1, &b0, 0, 64, &d1, 0, 0, 0).unwrap();
    p0.wait_local(0).unwrap();
    p0.elapse(FROM_NS - p0.now().as_nanos() + 1); // step just inside the cut
    match p0.put_with_completion(1, &b0, 0, 64, &d1, 0, 1, 1) {
        Ok(()) => {
            p0.wait_local(1).unwrap();
            (p0.now().as_nanos(), false)
        }
        Err(PhotonError::PeerDead(_)) => (p0.now().as_nanos(), true),
        Err(e) => panic!("outage put failed unexpectedly: {e}"),
    }
}

/// One row of the sweep: (death_detect_ns, heal_recover_ns, heal_probes).
fn failure_cycle(backoff_base_ns: u64) -> (u64, u64, u64) {
    // Permanent partition: the probe ladder must exhaust and declare death.
    let c = cluster_with(backoff_base_ns, u64::MAX);
    let (t, died) = outage_put(&c);
    assert!(died, "permanent partition must end in PeerDead");
    let detect_ns = t - FROM_NS;

    // Windowed partition: the ladder must ride out the outage and recover.
    let c = cluster_with(backoff_base_ns, UNTIL_NS);
    let (t, died) = outage_put(&c);
    assert!(!died, "a healed partition must not kill the peer");
    let recover_ns = t - UNTIL_NS;
    let probes = c.rank(0).stats().reconnect_probes;
    (detect_ns, recover_ns, probes)
}

/// Run the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e17",
        "peer-failure handling vs reconnection backoff base (500us outage)",
        &["backoff_base_us", "death_detect_us", "heal_recover_us", "heal_probes"],
    );
    for base in [5_000u64, 20_000, 80_000, 320_000] {
        let (detect, recover, probes) = failure_cycle(base);
        t.row(vec![us(base), us(detect), us(recover), probes.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn backoff_trades_probe_count_against_detection_latency() {
        let (d_fast, r_fast, p_fast) = super::failure_cycle(5_000);
        let (d_slow, r_slow, p_slow) = super::failure_cycle(320_000);
        // A lazier ladder takes longer to declare death...
        assert!(d_slow > d_fast, "death detect: {d_fast} !< {d_slow}");
        // ...spends fewer probes riding out the same outage...
        assert!(p_slow < p_fast, "heal probes: {p_slow} !< {p_fast}");
        // ...and both settings recover only after the heal instant.
        assert!(r_fast > 0 && r_slow > 0);
        // Every pending op on the dead path resolved (no hang): detection
        // itself is bounded by deadline + full ladder, well under 20ms.
        assert!(d_fast < 20_000_000 && d_slow < 20_000_000);
    }
}
