//! E6 — collective scaling: barrier and 8-word allreduce latency vs ranks,
//! Photon PWC collectives vs send/recv-based baseline collectives.
//!
//! Reconstructed expectation: both scale ~log2(n); Photon's rounds are
//! cheaper (no matching), so its curves sit below the baseline's with the
//! gap growing slowly in n.

use crate::report::{us, Table};
use photon_core::{PhotonCluster, ReduceOp};
use photon_fabric::NetworkModel;
use photon_msg::MsgCluster;

fn photon_coll_ns(n: usize, iters: usize, allreduce: bool) -> u64 {
    let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), super::compact_photon_config());
    std::thread::scope(|s| {
        for p in c.ranks() {
            s.spawn(move || {
                for _ in 0..iters {
                    if allreduce {
                        let mut v = [p.rank() as u64; 8];
                        p.allreduce_u64(&mut v, ReduceOp::Sum).unwrap();
                    } else {
                        p.barrier().unwrap();
                    }
                }
            });
        }
    });
    c.ranks().iter().map(|p| p.now().as_nanos()).max().unwrap() / iters as u64
}

fn msg_coll_ns(n: usize, iters: usize, allreduce: bool) -> u64 {
    let c = MsgCluster::new(n, NetworkModel::ib_fdr(), super::compact_msg_config());
    std::thread::scope(|s| {
        for e in c.ranks() {
            s.spawn(move || {
                for _ in 0..iters {
                    if allreduce {
                        let mut v = [e.rank() as u64; 8];
                        e.allreduce_u64_sum(&mut v).unwrap();
                    } else {
                        e.barrier().unwrap();
                    }
                }
            });
        }
    });
    c.ranks().iter().map(|e| e.now().as_nanos()).max().unwrap() / iters as u64
}

/// Run the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e6",
        "collective latency vs ranks, modeled FDR IB (us)",
        &[
            "ranks",
            "barrier_photon",
            "barrier_baseline",
            "allreduce8_photon",
            "allreduce8_baseline",
        ],
    );
    let iters = 10;
    for n in [2usize, 4, 8, 16, 32, 64] {
        t.row(vec![
            n.to_string(),
            us(photon_coll_ns(n, iters, false)),
            us(msg_coll_ns(n, iters, false)),
            us(photon_coll_ns(n, iters, true)),
            us(msg_coll_ns(n, iters, true)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn shape_log_scaling_and_photon_below_baseline() {
        let parse = |s: &str| s.parse::<f64>().unwrap();
        // Use a trimmed rank list in tests to keep runtime modest.
        let b2 = super::photon_coll_ns(2, 5, false);
        let b16 = super::photon_coll_ns(16, 5, false);
        // 16 ranks = 4 rounds vs 1: super-linear in rounds, sub-linear in n.
        assert!(b16 > 2 * b2, "barrier grows with rounds");
        assert!(b16 < 10 * b2, "barrier scales ~log n, not ~n");
        let p = super::photon_coll_ns(8, 5, false);
        let m = super::msg_coll_ns(8, 5, false);
        assert!(p < m, "photon barrier ({p}) should beat baseline ({m})");
        let _ = parse; // used in the binary's richer assertions
    }
}
