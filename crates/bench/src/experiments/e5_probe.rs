//! E5 — completion-probe overhead vs peer count (wall time).
//!
//! Photon's consumer scans one ledger + one ring per peer; this measures the
//! real software cost of that scan, empty and with traffic, as the job
//! scales. (This experiment is wall-clock: it characterizes the middleware
//! implementation, not the modeled wire.)

use crate::report::Table;
use photon_core::{PhotonCluster, ProbeFlags};
use photon_fabric::NetworkModel;
use std::time::Instant;

/// Run the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e5",
        "probe cost vs peers (wall ns/probe)",
        &["peers", "empty_probe_ns", "loaded_probe_ns"],
    );
    for n in [2usize, 4, 8, 16, 32, 64] {
        let c = PhotonCluster::new(n, NetworkModel::ideal(), super::compact_photon_config());
        let p0 = c.rank(0);
        // Empty probes: pure scan cost.
        let iters = 20_000;
        let start = Instant::now();
        for _ in 0..iters {
            let _ = p0.poll_completion(ProbeFlags::Any).unwrap();
        }
        let empty_ns = start.elapsed().as_nanos() as u64 / iters;
        // Loaded: rank 1 feeds events in ring-sized batches (the consumer
        // is not probing during the fill); measure per-event probe cost.
        let batch = 128u64;
        let p1 = c.rank(1);
        let mut loaded_total = 0u128;
        let mut loaded_events = 0u64;
        for _ in 0..8 {
            for i in 0..batch {
                p1.send(0, &[1u8; 8], i).unwrap();
            }
            let start = Instant::now();
            let mut got = 0;
            while got < batch {
                if p0.poll_completion(ProbeFlags::Remote).unwrap().is_some() {
                    got += 1;
                }
            }
            loaded_total += start.elapsed().as_nanos();
            loaded_events += batch;
        }
        let loaded_ns = (loaded_total / loaded_events as u128) as u64;
        t.row(vec![n.to_string(), empty_ns.to_string(), loaded_ns.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn probe_cost_is_finite_and_scales_subquadratically() {
        let t = super::run();
        let parse = |s: &str| s.parse::<f64>().unwrap();
        let at2 = parse(&t.rows[0][1]);
        let at64 = parse(&t.rows.last().unwrap()[1]);
        // Empty-probe cost grows with peers but stays well under 32x per
        // 32x peers (amortized by early exits), and under 100us absolute.
        assert!(at64 < 100_000.0);
        assert!(at64 >= at2 * 0.5, "sanity: more peers is not cheaper by 2x");
    }
}
