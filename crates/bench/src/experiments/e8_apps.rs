//! E8 — application benchmarks driven through the runtime and middleware:
//! GUPS (random access via parcels), a 1-D-decomposed Jacobi stencil with
//! halo exchange, and raw parcel rate vs the two-sided baseline.

use crate::report::{mops, size_label, us, Table};
use photon_core::PhotonCluster;
use photon_fabric::NetworkModel;
use photon_msg::{MsgCluster, MsgConfig};
use photon_runtime::{ActionRegistry, GlobalArray, RtConfig, RuntimeCluster};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// ------------------------------------------------------------------- GUPS

/// Giga-updates-per-second random access: every rank fires `updates`
/// xor-update parcels at random table locations; owners apply them.
/// (Like HPC-Challenge RandomAccess, small races are tolerated.)
fn gups(n: usize, updates_per_rank: usize, elems_per_rank: usize) -> f64 {
    let mut reg = ActionRegistry::new();
    let arr_slot: Arc<OnceLock<Arc<GlobalArray>>> = Arc::new(OnceLock::new());
    let applied = Arc::new(AtomicU64::new(0));
    let (slot2, applied2) = (Arc::clone(&arr_slot), Arc::clone(&applied));
    let update = reg.register("gups-update", move |ctx, payload| {
        let idx = u64::from_le_bytes(payload[0..8].try_into().unwrap()) as usize;
        let val = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        let arr = slot2.get().expect("array installed");
        let (owner, off) = arr.locate(idx);
        debug_assert_eq!(owner, ctx.rank());
        let block = arr.local_block(owner);
        block.write_u64(off, block.read_u64(off) ^ val);
        applied2.fetch_add(1, Ordering::Relaxed);
        None
    });
    let cfg =
        RtConfig { workers: 1, photon: super::compact_photon_config(), ..RtConfig::default() };
    let c = RuntimeCluster::new(n, NetworkModel::ib_fdr(), cfg, reg);
    let arr = c.alloc_global_array(elems_per_rank).unwrap();
    arr_slot.set(Arc::clone(&arr)).expect("set once");
    let total_elems = arr.len();
    std::thread::scope(|s| {
        for i in 0..n {
            let c = &c;
            let arr = &arr;
            s.spawn(move || {
                let node = c.node(i);
                let mut rng = StdRng::seed_from_u64(0xC0FFEE + i as u64);
                for _ in 0..updates_per_rank {
                    let idx = rng.gen_range(0..total_elems);
                    let (owner, _) = arr.locate(idx);
                    let mut payload = [0u8; 16];
                    payload[0..8].copy_from_slice(&(idx as u64).to_le_bytes());
                    payload[8..16].copy_from_slice(&rng.gen::<u64>().to_le_bytes());
                    node.send_parcel(owner, update, &payload).unwrap();
                }
            });
        }
    });
    let total = (n * updates_per_rank) as u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while applied.load(Ordering::Relaxed) < total {
        assert!(Instant::now() < deadline, "gups never drained");
        std::thread::sleep(Duration::from_micros(100));
    }
    let t_ns = c.nodes().iter().map(|nd| nd.photon().now().as_nanos()).max().unwrap();
    c.shutdown();
    total as f64 / (t_ns as f64 / 1e9)
}

/// GUPS with native remote fetch-adds instead of parcels: `window`
/// operations pipelined per rank, additive updates.
fn gups_atomics(n: usize, updates_per_rank: usize, elems_per_rank: usize) -> f64 {
    let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), super::compact_photon_config());
    let tables: Vec<_> =
        (0..n).map(|i| c.rank(i).register_buffer(elems_per_rank * 8).unwrap()).collect();
    let descs: Vec<_> = tables.iter().map(|t| t.descriptor()).collect();
    c.reset_time();
    std::thread::scope(|s| {
        for i in 0..n {
            let c = &c;
            let descs = &descs;
            s.spawn(move || {
                let p = c.rank(i);
                let window = 16usize;
                let results = p.register_buffer(window * 8).unwrap();
                let mut rng = StdRng::seed_from_u64(0xAAA + i as u64);
                for k in 0..updates_per_rank {
                    let tgt = rng.gen_range(0..n * elems_per_rank);
                    let (owner, off) = (tgt / elems_per_rank, (tgt % elems_per_rank) * 8);
                    let slot = k % window;
                    if k >= window {
                        p.wait_local((k - window) as u64).unwrap();
                    }
                    p.atomic_fetch_add(owner, &results, slot * 8, &descs[owner], off, 1, k as u64)
                        .unwrap();
                }
                for k in updates_per_rank.saturating_sub(window)..updates_per_rank {
                    p.wait_local(k as u64).unwrap();
                }
            });
        }
    });
    let t_ns = c.ranks().iter().map(|p| p.now().as_nanos()).max().unwrap();
    (n * updates_per_rank) as f64 / (t_ns as f64 / 1e9)
}

/// Run E8a.
pub fn run_gups() -> Table {
    let mut t = Table::new(
        "e8a",
        "GUPS random access (Mupdates/s, modeled FDR IB)",
        &["ranks", "updates_per_rank", "parcels_mups", "atomics_mups"],
    );
    for n in [2usize, 4, 8] {
        let updates = 4000;
        t.row(vec![
            n.to_string(),
            updates.to_string(),
            mops(gups(n, updates, 1 << 14)),
            mops(gups_atomics(n, updates, 1 << 14)),
        ]);
    }
    t
}

// ---------------------------------------------------------------- stencil

const COLS: usize = 512;
const ROWS: usize = 128;

/// One-dimensional Jacobi halo exchange over Photon puts: each rank owns
/// `ROWS`×`COLS` f64 cells plus two halo rows; per iteration it puts its
/// boundary rows into its ring neighbours' halo slots and waits for theirs.
/// Returns virtual ns per iteration.
fn photon_stencil_ns_per_iter(n: usize, iters: usize) -> u64 {
    let row_bytes = COLS * 8;
    // Halos land in pre-registered, pre-known destinations: the natural
    // Photon usage is the direct (zero-copy) path, not the eager ring.
    let cfg = photon_core::PhotonConfig { eager_threshold: 0, ..super::compact_photon_config() };
    let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), cfg);
    // Grid layout: row 0 = top halo, rows 1..=ROWS interior, row ROWS+1 =
    // bottom halo.
    let grids: Vec<_> =
        (0..n).map(|i| c.rank(i).register_buffer((ROWS + 2) * row_bytes).unwrap()).collect();
    let descs: Vec<_> = grids.iter().map(|g| g.descriptor()).collect();
    c.reset_time();
    std::thread::scope(|s| {
        for i in 0..n {
            let c = &c;
            let grids = &grids;
            let descs = &descs;
            s.spawn(move || {
                let p = c.rank(i);
                let g = &grids[i];
                let up = (i + n - 1) % n;
                let down = (i + 1) % n;
                for k in 0..iters as u64 {
                    // Top interior row -> `up`'s bottom halo; bottom
                    // interior row -> `down`'s top halo.
                    p.put_with_completion(
                        up,
                        g,
                        row_bytes,
                        row_bytes,
                        &descs[up],
                        (ROWS + 1) * row_bytes,
                        2 * k,
                        k,
                    )
                    .unwrap();
                    p.put_with_completion(
                        down,
                        g,
                        ROWS * row_bytes,
                        row_bytes,
                        &descs[down],
                        0,
                        2 * k + 1,
                        k,
                    )
                    .unwrap();
                    p.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
                    p.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
                    // Five-point relaxation over the interior, modeled at
                    // ~1 ns/cell of CPU work.
                    p.elapse((ROWS * COLS) as u64);
                    p.barrier().unwrap();
                }
            });
        }
    });
    c.ranks().iter().map(|p| p.now().as_nanos()).max().unwrap() / iters as u64
}

/// The same exchange over the two-sided baseline.
fn msg_stencil_ns_per_iter(n: usize, iters: usize) -> u64 {
    let row_bytes = COLS * 8;
    let c = MsgCluster::new(n, NetworkModel::ib_fdr(), super::compact_msg_config());
    let bufs: Vec<_> = (0..n).map(|i| c.rank(i).register_buffer(2 * row_bytes).unwrap()).collect();
    std::thread::scope(|s| {
        for i in 0..n {
            let c = &c;
            let bufs = &bufs;
            s.spawn(move || {
                let e = c.rank(i);
                let b = &bufs[i];
                let up = (i + n - 1) % n;
                let down = (i + 1) % n;
                for k in 0..iters as u64 {
                    e.send_from(up, b, 0, row_bytes, 2 * k).unwrap();
                    e.send_from(down, b, row_bytes, row_bytes, 2 * k + 1).unwrap();
                    e.recv_into(b, 0, row_bytes, Some(up), Some(2 * k + 1)).unwrap();
                    e.recv_into(b, row_bytes, row_bytes, Some(down), Some(2 * k)).unwrap();
                    e.elapse((ROWS * COLS) as u64);
                    e.barrier().unwrap();
                }
            });
        }
    });
    c.ranks().iter().map(|e| e.now().as_nanos()).max().unwrap() / iters as u64
}

/// Run E8b.
pub fn run_stencil() -> Table {
    let mut t = Table::new(
        "e8b",
        "Jacobi halo exchange, 128x512 f64 per rank (us/iter)",
        &["ranks", "photon_us_per_iter", "baseline_us_per_iter"],
    );
    for n in [2usize, 4, 8, 16] {
        t.row(vec![
            n.to_string(),
            us(photon_stencil_ns_per_iter(n, 10)),
            us(msg_stencil_ns_per_iter(n, 10)),
        ]);
    }
    t
}

// ------------------------------------------------------------ parcel rate

/// Parcel delivery rate: rank 0 floods rank 1 with `count` parcels of
/// `payload` bytes; returns parcels/s in virtual time.
fn parcel_rate(count: usize, payload: usize) -> f64 {
    let mut reg = ActionRegistry::new();
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    let sink = reg.register("sink", move |_ctx, _payload| {
        seen2.fetch_add(1, Ordering::Relaxed);
        None
    });
    let cfg = RtConfig { workers: 1, ..RtConfig::default() };
    let c = RuntimeCluster::new(2, NetworkModel::ib_fdr(), cfg, reg);
    let body = vec![0u8; payload];
    let n0 = c.node(0);
    for _ in 0..count {
        n0.send_parcel(1, sink, &body).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    while seen.load(Ordering::Relaxed) < count as u64 {
        assert!(Instant::now() < deadline, "parcels never drained");
        std::thread::yield_now();
    }
    let t_ns = c.node(1).photon().now().as_nanos();
    c.shutdown();
    count as f64 / (t_ns as f64 / 1e9)
}

/// The closest two-sided equivalent: tag-matched message flood.
fn msg_flood_rate(count: usize, payload: usize) -> f64 {
    let c = MsgCluster::new(2, NetworkModel::ib_fdr(), MsgConfig::default());
    let (e0, e1) = (c.rank(0), c.rank(1));
    let body = vec![0u8; payload];
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..count as u64 {
                e0.send(1, &body, i).unwrap();
            }
        });
        s.spawn(|| {
            for i in 0..count as u64 {
                e1.recv(Some(0), Some(i)).unwrap();
            }
        });
    });
    count as f64 / (c.rank(1).now().as_nanos() as f64 / 1e9)
}

/// Run E8c.
pub fn run_parcel_rate() -> Table {
    let mut t = Table::new(
        "e8c",
        "parcel delivery rate vs payload (Mparcels/s)",
        &["payload", "runtime_over_photon", "baseline_msg_flood"],
    );
    for payload in [16usize, 256, 4096] {
        let count = 3000;
        t.row(vec![
            size_label(payload),
            mops(parcel_rate(count, payload)),
            mops(msg_flood_rate(count, payload)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn gups_runs_and_reports_positive_rate() {
        let r = super::gups(2, 500, 1 << 10);
        assert!(r > 0.0);
    }

    #[test]
    fn stencil_scales_gently() {
        let t2 = super::photon_stencil_ns_per_iter(2, 5);
        let t8 = super::photon_stencil_ns_per_iter(8, 5);
        // Weak scaling: 4x the ranks should cost far less than 4x per iter.
        assert!(t8 < 3 * t2, "t2={t2} t8={t8}");
    }

    #[test]
    fn parcel_rate_positive_and_baseline_comparable() {
        let p = super::parcel_rate(500, 64);
        let b = super::msg_flood_rate(500, 64);
        assert!(p > 0.0 && b > 0.0);
    }
}
