//! E11 — network-model validation: measured virtual-time latencies against
//! the analytic LogGP expressions, per preset.

use crate::report::{size_label, Table};
use photon_fabric::mr::Access;
use photon_fabric::verbs::{MrSlice, RemoteSlice, SendWr, WrOp};
use photon_fabric::{Cluster, NetworkModel, VTime};

fn measured_oneway_ns(model: NetworkModel, size: usize) -> u64 {
    let c = Cluster::new(2, model);
    let src = c.nic(0).register(size, Access::ALL).unwrap();
    let dst = c.nic(1).register(size, Access::ALL).unwrap();
    let qp = c.nic(0).create_qp(1).unwrap();
    c.nic(0)
        .post_send(
            qp,
            SendWr::new(
                1,
                WrOp::Write {
                    local: MrSlice::whole(&src),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, size),
                    imm: Some(1),
                },
            ),
            VTime(0),
        )
        .unwrap();
    c.nic(1).poll_recv_cq().unwrap().ts.as_nanos()
}

fn analytic_oneway_ns(model: NetworkModel, size: usize) -> u64 {
    model.send_overhead_ns + model.latency_ns + model.egress_hold_ns(size)
}

/// Run the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e11",
        "model validation: measured vs analytic one-way (ns)",
        &["model", "size", "measured", "analytic", "ratio"],
    );
    for (name, model) in [
        ("ib_fdr", NetworkModel::ib_fdr()),
        ("gemini", NetworkModel::cray_gemini()),
        ("eth10g", NetworkModel::ethernet_10g()),
    ] {
        for size in [8usize, 4096, 1 << 20] {
            let m = measured_oneway_ns(model, size);
            let a = analytic_oneway_ns(model, size);
            t.row(vec![
                name.to_string(),
                size_label(size),
                m.to_string(),
                a.to_string(),
                format!("{:.3}", m as f64 / a as f64),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_matches_analytic_exactly() {
        let t = super::run();
        for row in &t.rows {
            assert_eq!(row[2], row[3], "measured != analytic in {row:?}");
        }
    }
}
