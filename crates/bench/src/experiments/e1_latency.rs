//! E1 — one-way latency vs message size (Photon PWC vs two-sided baseline).
//!
//! Reconstructed expectation: Photon's packed eager path (no tag matching,
//! single wire op) wins for small messages; above the baseline's eager
//! threshold the gap *jumps* (the baseline pays the RTS/CTS handshake and a
//! per-transfer registration) and then narrows again as wire serialization
//! dominates both.

use super::drivers;
use crate::report::{size_label, us, Table};
use photon_core::PhotonConfig;
use photon_fabric::NetworkModel;
use photon_msg::MsgConfig;

/// Run the experiment.
pub fn run() -> Table {
    let model = NetworkModel::ib_fdr();
    let mut t = Table::new(
        "e1",
        "one-way latency vs size, modeled FDR IB (us)",
        &["size", "photon_pwc_us", "baseline_us", "speedup"],
    );
    let iters = 50;
    for exp in [3usize, 6, 9, 10, 12, 13, 14, 16] {
        let size = 1usize << exp;
        let p = drivers::photon_pingpong_ns(model, PhotonConfig::default(), size, iters);
        let b = drivers::msg_pingpong_ns(model, MsgConfig::default(), size, iters);
        t.row(vec![size_label(size), us(p), us(b), format!("{:.2}x", b as f64 / p as f64)]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn shape_photon_wins_small_rendezvous_jump_then_narrow() {
        let t = super::run();
        assert_eq!(t.rows.len(), 8);
        let speedup = |row: &Vec<String>| row[3].trim_end_matches('x').parse::<f64>().unwrap();
        let first = speedup(&t.rows[0]);
        assert!(first > 1.05, "photon should win small messages ({first}x)");
        // Every row: photon at least on par.
        for row in &t.rows {
            assert!(speedup(row) > 0.95, "photon should never lose: {row:?}");
        }
        // The baseline's rendezvous threshold (8 KiB) makes the gap jump...
        let below = speedup(&t.rows[5]); // 8 KiB (still eager)
        let above = speedup(&t.rows[6]); // 16 KiB (rendezvous)
        assert!(above > 1.5 * below, "rendezvous jump: {below}x -> {above}x");
        // ...and it narrows again as serialization dominates.
        let last = speedup(t.rows.last().unwrap());
        assert!(last < above, "gap narrows at 64KiB: {above}x -> {last}x");
    }
}
