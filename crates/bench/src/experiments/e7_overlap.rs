//! E7 — communication/computation overlap vs message size.
//!
//! For each size: inject a transfer, model `C` nanoseconds of computation
//! equal to the transfer's wire time, and wait for the remote ack. In the
//! *blocking* schedule the compute follows the ack; in the *overlapped*
//! schedule it runs between injection and the wait. The recovered fraction
//! `(t_blocking - t_overlap) / C` is the overlap the API makes available.
//!
//! Reconstructed expectation: Photon's one-sided puts overlap nearly fully
//! at all sizes; the baseline overlaps its eager sends but serializes on the
//! rendezvous handshake for large messages.

use crate::report::{size_label, Table};
use photon_core::{PhotonCluster, PhotonConfig};
use photon_fabric::NetworkModel;
use photon_msg::{MsgCluster, MsgConfig};

fn photon_total_ns(model: NetworkModel, size: usize, compute_ns: u64, overlap: bool) -> u64 {
    let cfg = PhotonConfig { eager_threshold: 0, ..PhotonConfig::default() };
    let c = PhotonCluster::new(2, model, cfg);
    let (p0, p1) = (c.rank(0), c.rank(1));
    let b0 = p0.register_buffer(size).unwrap();
    let b1 = p1.register_buffer(size).unwrap();
    let d1 = b1.descriptor();
    let d0 = b0.descriptor();
    c.reset_time();
    std::thread::scope(|s| {
        s.spawn(|| {
            p0.put_with_completion(1, &b0, 0, size, &d1, 0, 1, 1).unwrap();
            if overlap {
                p0.elapse(compute_ns);
                p0.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
            // ack
            } else {
                p0.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
                p0.elapse(compute_ns);
            }
        });
        s.spawn(|| {
            p1.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
            p1.put_with_completion(0, &b1, 0, 0, &d0, 0, 1, 1).unwrap();
        });
    });
    c.rank(0).now().as_nanos()
}

fn msg_total_ns(model: NetworkModel, size: usize, compute_ns: u64, overlap: bool) -> u64 {
    let c = MsgCluster::new(2, model, MsgConfig::default());
    let (e0, e1) = (c.rank(0), c.rank(1));
    let sbuf = e0.register_buffer(size).unwrap();
    std::thread::scope(|s| {
        s.spawn(|| {
            // A blocking two-sided send cannot defer its own completion;
            // overlap can only happen after it returns.
            e0.send_from(1, &sbuf, 0, size, 1).unwrap();
            if overlap {
                e0.elapse(compute_ns);
                e0.recv(Some(1), Some(2)).unwrap();
            } else {
                e0.recv(Some(1), Some(2)).unwrap();
                e0.elapse(compute_ns);
            }
        });
        s.spawn(|| {
            e1.recv(Some(0), Some(1)).unwrap();
            e1.send(0, &[], 2).unwrap();
        });
    });
    c.rank(0).now().as_nanos()
}

/// Run the experiment.
pub fn run() -> Table {
    let model = NetworkModel::ib_fdr();
    let mut t = Table::new(
        "e7",
        "available comm/compute overlap vs size (%)",
        &["size", "photon_pct", "baseline_pct"],
    );
    for exp in [12usize, 14, 16, 18, 20, 22] {
        let size = 1usize << exp;
        let compute = model.serialize_ns(size) + model.latency_ns;
        let p = overlap_pct(
            photon_total_ns(model, size, compute, false),
            photon_total_ns(model, size, compute, true),
            compute,
        );
        let b = overlap_pct(
            msg_total_ns(model, size, compute, false),
            msg_total_ns(model, size, compute, true),
            compute,
        );
        t.row(vec![size_label(size), format!("{p:.0}"), format!("{b:.0}")]);
    }
    t
}

fn overlap_pct(blocking: u64, overlapped: u64, compute: u64) -> f64 {
    ((blocking.saturating_sub(overlapped)) as f64 / compute as f64 * 100.0).clamp(0.0, 100.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn shape_photon_overlaps_baseline_rendezvous_does_not() {
        let t = super::run();
        let parse = |s: &str| s.parse::<f64>().unwrap();
        let large = t.rows.last().unwrap();
        assert!(parse(&large[1]) > 80.0, "photon should overlap large puts: {}", large[1]);
        assert!(
            parse(&large[2]) < parse(&large[1]),
            "blocking rendezvous baseline overlaps less: {} vs {}",
            large[2],
            large[1]
        );
    }
}
