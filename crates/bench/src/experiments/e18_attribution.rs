//! E18 — per-stage latency attribution from op-lifecycle spans (extension).
//!
//! The observability layer stamps every PWC op at five points: `post` (API
//! entry), `stage` (payload staged for the NIC), `inject` (CQE: the NIC
//! finished injection), `deliver` (visible at the target's probe), and
//! `complete` (surfaced to the application). This experiment re-runs the
//! E1 put shape with recording enabled and attributes the one-way latency
//! to those stages — then repeats the 8-byte case over a degraded link
//! (the E17 fault machinery) to show the attribution localizing the added
//! latency in the wire stage rather than smearing it across the pipeline.

use crate::report::{size_label, us, Table};
use photon_core::obs::{OpSpan, SpanDir};
use photon_core::{PhotonCluster, PhotonConfig};
use photon_fabric::{NetworkModel, VTime, Window};

/// Mean of `f` over spans where it yields a value, in ns (0 if none).
fn mean_ns(spans: &[OpSpan], f: impl Fn(&OpSpan) -> Option<u64>) -> u64 {
    let vals: Vec<u64> = spans.iter().filter_map(&f).collect();
    if vals.is_empty() {
        0
    } else {
        vals.iter().sum::<u64>() / vals.len() as u64
    }
}

/// Run `iters` lockstep 1-outstanding puts of `size` bytes rank 0 → rank 1
/// with span recording on; returns (initiator spans, target spans keyed by
/// the same rid numbering).
fn staged_puts(
    size: usize,
    iters: u64,
    degrade_extra_ns: Option<u64>,
) -> (Vec<OpSpan>, Vec<OpSpan>) {
    let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default());
    if let Some(extra) = degrade_extra_ns {
        // Whole-run window: every transfer pays the degraded link.
        c.fabric().switch().faults().degrade_link_during(
            0,
            1,
            extra,
            Window::new(VTime(0), VTime(u64::MAX)),
        );
    }
    for p in c.ranks() {
        p.obs().enable();
    }
    let (p0, p1) = (c.rank(0), c.rank(1));
    let src = p0.register_buffer(size.max(8)).unwrap();
    let dst = p1.register_buffer(size.max(8)).unwrap();
    let d = dst.descriptor();
    for i in 0..iters {
        p0.put_with_completion(1, &src, 0, size, &d, 0, i, i).unwrap();
        let local = p0.wait_completion().unwrap();
        assert!(local.is_ok() && local.rid == i);
        let remote = p1.wait_completion().unwrap();
        assert!(remote.rid == i);
    }
    let init = p0.span_trace().spans;
    let tgt = p1.span_trace().spans;
    (
        init.into_iter().filter(|s| s.dir == SpanDir::Initiator).collect(),
        tgt.into_iter().filter(|s| s.dir == SpanDir::Target).collect(),
    )
}

/// Compute one attribution row: stage means in µs strings plus raw totals.
fn attribution_row(label: String, size: usize, iters: u64, extra: Option<u64>) -> Vec<String> {
    let (init, tgt) = staged_puts(size, iters, extra);
    let post_stage = mean_ns(&init, |s| Some(s.stage_ns?.saturating_sub(s.post_ns?)));
    let stage_inject = mean_ns(&init, |s| Some(s.inject_ns?.saturating_sub(s.stage_ns?)));
    let complete = mean_ns(&init, |s| Some(s.complete_ns?.saturating_sub(s.inject_ns?)));
    // One-way visibility: initiator post → target deliver, matched by rid
    // (the driver uses the same number for local and remote ids).
    let deliver = {
        let mut vals = Vec::new();
        for s in &init {
            let Some(post) = s.post_ns else { continue };
            if let Some(t) = tgt.iter().find(|t| t.rid == s.rid) {
                if let Some(dns) = t.deliver_ns {
                    vals.push(dns.saturating_sub(post));
                }
            }
        }
        if vals.is_empty() {
            0
        } else {
            vals.iter().sum::<u64>() / vals.len() as u64
        }
    };
    vec![label, us(post_stage), us(stage_inject), us(complete), us(deliver)]
}

/// Run the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e18",
        "per-stage latency attribution from spans, modeled FDR IB (us)",
        &[
            "scenario",
            "post_to_stage_us",
            "stage_to_inject_us",
            "inject_to_complete_us",
            "one_way_post_to_deliver_us",
        ],
    );
    let iters = 50;
    for exp in [3usize, 10, 16] {
        let size = 1usize << exp;
        t.row(attribution_row(size_label(size), size, iters, None));
    }
    // E17 tie-in: same 8-byte shape over a link degraded by 5 µs each way.
    t.row(attribution_row("8B_degraded_5us".into(), 8, iters, Some(5_000)));
    t.note(
        "stages: post(API)->stage(payload staged)->inject(CQE)->complete(surfaced); \
         one-way = initiator post -> target deliver, rid-matched across ranks"
            .into(),
    );
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn attribution_localizes_degraded_link_in_the_wire_stage() {
        let t = super::run();
        assert_eq!(t.rows.len(), 4);
        let col = |row: &Vec<String>, i: usize| row[i].parse::<f64>().unwrap();
        // One-way latency grows with size.
        let small = col(&t.rows[0], 4);
        let large = col(&t.rows[2], 4);
        assert!(small > 0.0, "8B one-way must be nonzero");
        assert!(large > small, "64KiB one-way {large} should exceed 8B {small}");
        // Degraded-link row: the extra 5us lands beyond staging — the
        // one-way time inflates by roughly the injected latency while the
        // post->stage (local staging copy) stays put.
        let healthy = &t.rows[0];
        let degraded = &t.rows[3];
        assert!(
            (col(degraded, 1) - col(healthy, 1)).abs() < 1.0,
            "staging cost should not change under a degraded link: {healthy:?} vs {degraded:?}"
        );
        assert!(
            col(degraded, 4) >= col(healthy, 4) + 4.0,
            "one-way should absorb ~5us of link degradation: {healthy:?} vs {degraded:?}"
        );
    }
}
