//! E12 — registration-cache ablation for the two-sided baseline.
//!
//! The E1 gap above the baseline's rendezvous threshold has two components:
//! the RTS/CTS handshake and the per-transfer registration. A registration
//! cache (as production MPIs deploy) removes the second. This ablation
//! isolates them: with the cache on, the remaining baseline deficit is pure
//! protocol (handshake RTT + matching), which is Photon's structural
//! advantage; with it off, registration dominates at mid sizes.

use super::drivers;
use crate::report::{size_label, us, Table};
use photon_core::PhotonConfig;
use photon_fabric::NetworkModel;
use photon_msg::MsgConfig;

/// Run the experiment.
pub fn run() -> Table {
    let model = NetworkModel::ib_fdr();
    let mut t = Table::new(
        "e12",
        "one-way latency: baseline registration-cache ablation (us)",
        &["size", "photon_pwc", "baseline_nocache", "baseline_cache"],
    );
    let iters = 40;
    for exp in [13usize, 14, 16, 18, 20] {
        let size = 1usize << exp;
        let p = drivers::photon_pingpong_ns(model, PhotonConfig::default(), size, iters);
        let nocache = drivers::msg_pingpong_ns(
            model,
            MsgConfig { registration_cache: false, ..MsgConfig::default() },
            size,
            iters,
        );
        let cache = drivers::msg_pingpong_ns(
            model,
            MsgConfig { registration_cache: true, ..MsgConfig::default() },
            size,
            iters,
        );
        t.row(vec![size_label(size), us(p), us(nocache), us(cache)]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn cache_recovers_most_of_the_rendezvous_gap() {
        let t = super::run();
        let parse = |s: &str| s.parse::<f64>().unwrap();
        for (i, row) in t.rows.iter().enumerate() {
            let photon = parse(&row[1]);
            let nocache = parse(&row[2]);
            let cache = parse(&row[3]);
            if i == 0 {
                // 8 KiB is still eager for the baseline: nothing to cache.
                assert_eq!(row[2], row[3], "{row:?}");
            } else {
                assert!(cache < nocache, "cache must help rendezvous rows: {row:?}");
            }
            assert!(photon <= cache * 1.02, "photon still at least matches: {row:?}");
        }
        // At 16KiB the cache removes the (amortizable) registration but not
        // the handshake: photon remains strictly faster.
        let first = &t.rows[1];
        assert!(parse(&first[1]) < parse(&first[3]), "{first:?}");
    }
}
