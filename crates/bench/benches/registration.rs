//! Wall-clock cost of buffer registration/deregistration (experiment E9):
//! the table-management overhead a registration cache amortizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use photon_core::{PhotonCluster, PhotonConfig};
use photon_fabric::NetworkModel;

fn bench_register(c: &mut Criterion) {
    let cluster = PhotonCluster::new(1, NetworkModel::ideal(), PhotonConfig::default());
    let p = cluster.rank(0).clone();
    let mut g = c.benchmark_group("register_deregister");
    for size in [4096usize, 64 * 1024, 1 << 20, 4 << 20] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let buf = p.register_buffer(size).unwrap();
                p.release_buffer(&buf).unwrap();
            })
        });
    }
    g.finish();
}

fn bench_descriptor_exchange(c: &mut Criterion) {
    let cluster = PhotonCluster::new(1, NetworkModel::ideal(), PhotonConfig::default());
    let p = cluster.rank(0).clone();
    let buf = p.register_buffer(4096).unwrap();
    c.bench_function("descriptor_encode_decode", |b| {
        b.iter(|| {
            let d = buf.descriptor();
            let bytes = d.to_bytes();
            photon_fabric::mr::RemoteKey::from_bytes(&bytes)
        })
    });
}

criterion_group!(benches, bench_register, bench_descriptor_exchange);
criterion_main!(benches);
