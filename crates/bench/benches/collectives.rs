//! Wall-clock collective costs (threads included): how long a barrier or
//! allreduce takes end-to-end on the host, per rank count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use photon_core::{PhotonCluster, PhotonConfig, ReduceOp};
use photon_fabric::NetworkModel;

fn compact() -> PhotonConfig {
    PhotonConfig {
        ledger_entries: 64,
        eager_ring_bytes: 16 * 1024,
        coll_slot_bytes: 1024,
        ..PhotonConfig::default()
    }
}

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier_wall");
    g.sample_size(10);
    for n in [2usize, 4, 8] {
        let cluster = PhotonCluster::new(n, NetworkModel::ideal(), compact());
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for p in cluster.ranks() {
                        s.spawn(move || p.barrier().unwrap());
                    }
                });
            })
        });
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce8_wall");
    g.sample_size(10);
    for n in [2usize, 4, 8] {
        let cluster = PhotonCluster::new(n, NetworkModel::ideal(), compact());
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for p in cluster.ranks() {
                        s.spawn(move || {
                            let mut v = [p.rank() as u64; 8];
                            p.allreduce_u64(&mut v, ReduceOp::Sum).unwrap();
                        });
                    }
                });
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_barrier, bench_allreduce);
criterion_main!(benches);
