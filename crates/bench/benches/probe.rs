//! Wall-clock cost of `probe_completion` — the hot path of every runtime
//! progress loop (experiment E5's software-side companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use photon_core::{Completion, PhotonCluster, PhotonConfig, ProbeFlags};
use photon_fabric::NetworkModel;

fn compact() -> PhotonConfig {
    PhotonConfig {
        ledger_entries: 64,
        eager_ring_bytes: 16 * 1024,
        coll_slot_bytes: 1024,
        ..PhotonConfig::default()
    }
}

fn bench_empty_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe_empty");
    for n in [2usize, 8, 32] {
        let cluster = PhotonCluster::new(n, NetworkModel::ideal(), compact());
        let p0 = cluster.rank(0).clone();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| p0.poll_completion(ProbeFlags::Any).unwrap())
        });
    }
    g.finish();
}

fn bench_probe_one_event(c: &mut Criterion) {
    // Cost of send + probe round trip through the eager machinery.
    let cluster = PhotonCluster::new(2, NetworkModel::ideal(), compact());
    let p0 = cluster.rank(0).clone();
    let p1 = cluster.rank(1).clone();
    c.bench_function("send_then_probe_8B", |b| {
        b.iter(|| {
            p1.send(0, &[7u8; 8], 1).unwrap();
            loop {
                if p0.poll_completion(ProbeFlags::Remote).unwrap().is_some() {
                    break;
                }
            }
        })
    });
}

fn bench_wait_local_deep(c: &mut Criterion) {
    // wait_local with a deep backlog of other rids queued: O(1) on the
    // indexed engine regardless of depth, O(depth) per spin on a scanning
    // queue.
    let mut g = c.benchmark_group("wait_local_deep");
    for depth in [256u64, 4096] {
        let cluster = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
        let p0 = cluster.rank(0).clone();
        let p1 = cluster.rank(1).clone();
        let src = p0.register_buffer(8).unwrap();
        let dst = p1.register_buffer(8).unwrap();
        let d = dst.descriptor();
        // Backlog that stays queued for the whole measurement.
        let mut posted = 0u64;
        while posted < depth {
            let chunk = 128.min(depth - posted);
            for i in 0..chunk {
                p0.put(1, &src, 0, 8, &d, 0, 1_000_000 + posted + i).unwrap();
            }
            posted += chunk;
            p0.progress().unwrap();
        }
        let mut rid = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                rid += 1;
                p0.put(1, &src, 0, 8, &d, 0, rid).unwrap();
                p0.wait_local(rid).unwrap();
            })
        });
    }
    g.finish();
}

fn bench_mt_post_probe(c: &mut Criterion) {
    // Four producer threads hammering put + wait_local on one shared
    // context: the contention pattern the sharded engine exists for.
    let cluster = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
    let p0 = cluster.rank(0).clone();
    let p1 = cluster.rank(1).clone();
    let dst = p1.register_buffer(64).unwrap();
    let d = dst.descriptor();
    c.bench_function("mt_post_probe_4x64", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let p0 = p0.clone();
                    let src = p0.register_buffer(8).unwrap();
                    s.spawn(move || {
                        for i in 0..64 {
                            let rid = (t << 32) | i;
                            p0.put(1, &src, 0, 8, &d, 0, rid).unwrap();
                            p0.wait_local(rid).unwrap();
                        }
                    });
                }
            })
        })
    });
}

fn bench_batch_probe(c: &mut Criterion) {
    // probe_completions vs per-event probe_completion over the same
    // 256-event backlog.
    let cluster = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
    let p0 = cluster.rank(0).clone();
    let p1 = cluster.rank(1).clone();
    let src = p0.register_buffer(8).unwrap();
    let dst = p1.register_buffer(8).unwrap();
    let d = dst.descriptor();
    let fill = |base: u64| {
        for i in 0..256u64 {
            p0.put(1, &src, 0, 8, &d, 0, base + i).unwrap();
            if i % 128 == 127 {
                p0.progress().unwrap();
            }
        }
    };
    let mut g = c.benchmark_group("drain_256");
    let mut base = 0u64;
    g.bench_function("single", |b| {
        b.iter(|| {
            fill(base);
            base += 1000;
            let mut got = 0;
            while got < 256 {
                if p0.poll_completion(ProbeFlags::Local).unwrap().is_some() {
                    got += 1;
                }
            }
        })
    });
    let mut buf: Vec<Completion> = Vec::with_capacity(256);
    g.bench_function("batch", |b| {
        b.iter(|| {
            fill(base);
            base += 1000;
            let mut got = 0;
            while got < 256 {
                got += p0.poll_completions(ProbeFlags::Local, &mut buf, 256).unwrap();
                buf.clear();
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_empty_probe,
    bench_probe_one_event,
    bench_wait_local_deep,
    bench_mt_post_probe,
    bench_batch_probe
);
criterion_main!(benches);
