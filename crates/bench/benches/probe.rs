//! Wall-clock cost of `probe_completion` — the hot path of every runtime
//! progress loop (experiment E5's software-side companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use photon_core::{PhotonCluster, PhotonConfig, ProbeFlags};
use photon_fabric::NetworkModel;

fn compact() -> PhotonConfig {
    PhotonConfig {
        ledger_entries: 64,
        eager_ring_bytes: 16 * 1024,
        coll_slot_bytes: 1024,
        ..PhotonConfig::default()
    }
}

fn bench_empty_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe_empty");
    for n in [2usize, 8, 32] {
        let cluster = PhotonCluster::new(n, NetworkModel::ideal(), compact());
        let p0 = cluster.rank(0).clone();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| p0.probe_completion(ProbeFlags::Any).unwrap())
        });
    }
    g.finish();
}

fn bench_probe_one_event(c: &mut Criterion) {
    // Cost of send + probe round trip through the eager machinery.
    let cluster = PhotonCluster::new(2, NetworkModel::ideal(), compact());
    let p0 = cluster.rank(0).clone();
    let p1 = cluster.rank(1).clone();
    c.bench_function("send_then_probe_8B", |b| {
        b.iter(|| {
            p1.send(0, &[7u8; 8], 1).unwrap();
            loop {
                if p0.probe_completion(ProbeFlags::Remote).unwrap().is_some() {
                    break;
                }
            }
        })
    });
}

criterion_group!(benches, bench_empty_probe, bench_probe_one_event);
criterion_main!(benches);
