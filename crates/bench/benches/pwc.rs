//! Wall-clock software-path cost of put-with-completion: what a host CPU
//! pays per operation, separate from the modeled wire.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use photon_core::{PhotonCluster, PhotonConfig, ProbeFlags};
use photon_fabric::NetworkModel;

fn bench_pwc_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("pwc_post_plus_consume");
    for (label, size) in [("eager_64B", 64usize), ("eager_4KiB", 4096), ("direct_64KiB", 65536)] {
        let cluster = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
        let p0 = cluster.rank(0).clone();
        let p1 = cluster.rank(1).clone();
        let src = p0.register_buffer(size).unwrap();
        let dst = p1.register_buffer(size).unwrap();
        let d = dst.descriptor();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(label), &size, |b, &size| {
            b.iter(|| {
                p0.put_with_completion(1, &src, 0, size, &d, 0, 1, 1).unwrap();
                p0.wait_local(1).unwrap();
                p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
            })
        });
    }
    g.finish();
}

fn bench_plain_put(c: &mut Criterion) {
    let cluster = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
    let p0 = cluster.rank(0).clone();
    let src = p0.register_buffer(8).unwrap();
    let dst = cluster.rank(1).register_buffer(8).unwrap();
    let d = dst.descriptor();
    c.bench_function("plain_put_8B_post_and_drain", |b| {
        b.iter(|| {
            p0.put(1, &src, 0, 8, &d, 0, 1).unwrap();
            p0.wait_local(1).unwrap();
        })
    });
}

fn bench_get(c: &mut Criterion) {
    let cluster = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
    let p0 = cluster.rank(0).clone();
    let dst = p0.register_buffer(4096).unwrap();
    let src = cluster.rank(1).register_buffer(4096).unwrap();
    let d = src.descriptor();
    c.bench_function("get_4KiB_post_and_drain", |b| {
        b.iter(|| {
            p0.get_with_completion(1, &dst, 0, 4096, &d, 0, 1).unwrap();
            p0.wait_local(1).unwrap();
        })
    });
}

fn bench_probe_empty_baseline(c: &mut Criterion) {
    // For comparison against pwc costs in the same report.
    let cluster = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
    let p0 = cluster.rank(0).clone();
    c.bench_function("probe_empty_2ranks", |b| {
        b.iter(|| p0.poll_completion(ProbeFlags::Any).unwrap())
    });
}

criterion_group!(
    benches,
    bench_pwc_roundtrip,
    bench_plain_put,
    bench_get,
    bench_probe_empty_baseline
);
criterion_main!(benches);
