//! Pure state-machine costs: ledger and eager-ring produce/consume without
//! any fabric involvement. These bound the protocol's minimum CPU cost.

use criterion::{criterion_group, criterion_main, Criterion};
use photon_core::eager::{EagerRx, EagerTx, FrameHeader, FrameKind, FRAME_HDR};
use photon_core::ledger::{Entry, EntryKind, LedgerRx, LedgerTx, ENTRY_BYTES};

fn bench_ledger_produce_consume(c: &mut Criterion) {
    c.bench_function("ledger_produce_encode_accept", |b| {
        let slots = 256;
        let mut tx = LedgerTx::new(slots);
        let mut rx = LedgerRx::new(slots, 128);
        let mut mem = vec![0u8; slots * ENTRY_BYTES];
        b.iter(|| {
            let (slot, seq) = match tx.try_produce() {
                Some(v) => v,
                None => {
                    tx.update_credits(rx.consumed());
                    tx.try_produce().unwrap()
                }
            };
            let e = Entry {
                seq,
                rid: seq,
                size: 8,
                addr: 0,
                rkey: 0,
                kind: EntryKind::Completion,
                ts: seq,
            };
            let off = tx.slot_offset(slot);
            mem[off..off + ENTRY_BYTES].copy_from_slice(&e.encode());
            let off = rx.head_offset();
            let got = rx.accept(&mem[off..off + ENTRY_BYTES]).unwrap();
            let _ = rx.credit_due();
            criterion::black_box(got.rid)
        })
    });
}

fn bench_eager_ring(c: &mut Criterion) {
    c.bench_function("eager_ring_reserve_write_accept_64B", |b| {
        let ring_bytes = 64 * 1024;
        let mut tx = EagerTx::new(ring_bytes);
        let mut rx = EagerRx::new(ring_bytes, 16 * 1024);
        let mut ring = vec![0u8; ring_bytes];
        let payload = [0xA5u8; 64];
        b.iter(|| {
            let r = match tx.try_reserve(64) {
                Some(r) => r,
                None => {
                    tx.update_credits(rx.cursor());
                    tx.try_reserve(64).unwrap()
                }
            };
            if let Some((off, dead, seq)) = r.skip {
                let h = FrameHeader {
                    seq,
                    rid: 0,
                    dst_addr: 0,
                    dst_rkey: 0,
                    size: dead,
                    kind: FrameKind::Skip,
                    ts: 0,
                };
                ring[off..off + FRAME_HDR].copy_from_slice(&h.encode());
            }
            let h = FrameHeader {
                seq: r.seq,
                rid: r.seq,
                dst_addr: 0,
                dst_rkey: 0,
                size: 64,
                kind: FrameKind::Msg,
                ts: 0,
            };
            ring[r.offset..r.offset + FRAME_HDR].copy_from_slice(&h.encode());
            ring[r.offset + FRAME_HDR..r.offset + FRAME_HDR + 64].copy_from_slice(&payload);
            loop {
                let f = rx.accept(&ring).unwrap();
                let _ = rx.credit_due();
                if f.header.kind != FrameKind::Skip {
                    break criterion::black_box(f.header.rid);
                }
            }
        })
    });
}

fn bench_entry_codec(c: &mut Criterion) {
    let e = Entry {
        seq: 12345,
        rid: 0xfeed_beef,
        size: 4096,
        addr: 0x1000_0000,
        rkey: 42,
        kind: EntryKind::Completion,
        ts: 987_654,
    };
    c.bench_function("entry_encode_decode", |b| {
        b.iter(|| Entry::decode(&criterion::black_box(e).encode()).unwrap())
    });
}

criterion_group!(benches, bench_ledger_produce_consume, bench_eager_ring, bench_entry_codec);
criterion_main!(benches);
