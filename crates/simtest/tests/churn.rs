//! Churn-at-scale acceptance tests: the 1000-node case the issue pins, and
//! the per-rank memory scaling law across cluster sizes.
//!
//! These run the churn driver directly (not through the campaign) so the
//! cluster size and connection-cache capacity can be held constant while
//! everything else stays seeded and deterministic.

use photon_simtest::{run_churn_case_metrics, SimParams};

/// A churn parameter set pinned to exactly `n` ranks and a short traffic
/// phase (the convergence phase after it dominates what these tests check).
fn params_at(n: usize) -> SimParams {
    SimParams { min_nodes: n, max_nodes: n, min_ops: 12, max_ops: 12, ..SimParams::churn() }
}

/// The headline robustness case: 1000 ranks, crashes and rejoins mid-traffic,
/// a 16-entry connection cache. Every op must resolve typed, membership must
/// reach ground truth within the O(log n) budget, and no rank may end with
/// unbounded per-peer state.
#[test]
fn churn_survives_1000_nodes() {
    let (rep, m) = run_churn_case_metrics(0x1000_5EED, 1, &params_at(1000), Some(16));
    assert!(rep.passed(), "1000-node churn case failed: {:?}", rep.violations);
    assert_eq!(m.nodes, 1000);
    assert!(m.posted > 0, "case drove no traffic");
    assert!(m.conv_rounds.is_some(), "membership never converged (budget = 4*log2(n) + 16 rounds)");
    assert!(m.gossip_msgs > 0, "no gossip was exchanged");
    // The cache cap bounds connection state absolutely, independent of n:
    // 16 conns of a few KiB each, with headroom for block/service overhead.
    assert!(
        m.max_conn_state < 2 * 1024 * 1024,
        "per-rank connection state {} bytes at cap 16",
        m.max_conn_state
    );
}

/// Per-rank *connection* state must be sublinear in cluster size when the
/// cache cap is held constant — the fitted exponent over n ∈ {64, 256, 1000}
/// stays below 0.5 (it is essentially flat: the LRU cap bounds it).
/// Membership state is O(n) by design (a SWIM view names every member) but
/// must stay within its 64-bytes-per-member envelope, which the driver
/// asserts internally for every case.
#[test]
fn churn_per_rank_memory_is_sublinear() {
    let sizes = [64usize, 256, 1000];
    let mut conn_bytes = Vec::new();
    let mut member_bytes = Vec::new();
    for &n in &sizes {
        let (rep, m) = run_churn_case_metrics(0x5CA1_AB1E, 2, &params_at(n), Some(16));
        assert!(rep.passed(), "n={n}: {:?}", rep.violations);
        assert!(m.max_conn_state > 0, "n={n}: no connection state measured");
        conn_bytes.push(m.max_conn_state as f64);
        member_bytes.push(m.max_member_state as f64);
    }
    // Least-squares slope of log(bytes) vs log(n) — the growth exponent.
    let xs: Vec<f64> = sizes.iter().map(|&n| (n as f64).ln()).collect();
    let ys: Vec<f64> = conn_bytes.iter().map(|&b| b.ln()).collect();
    let mx = xs.iter().sum::<f64>() / xs.len() as f64;
    let my = ys.iter().sum::<f64>() / ys.len() as f64;
    let num: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let den: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let p = num / den;
    assert!(
        p < 0.5,
        "per-rank connection state grows like n^{p:.2} ({conn_bytes:?} bytes at {sizes:?}); \
         the cache cap should make it ~flat"
    );
    // Membership views stay within the linear envelope at every size.
    for (&n, &b) in sizes.iter().zip(&member_bytes) {
        assert!(b <= 64.0 * n as f64, "n={n}: membership view {b} bytes");
    }
}
