//! RPC chaos driver: many clients, one KV server, crashes and partitions
//! landing mid-call.
//!
//! An rpc-campaign case is a [`Schedule`] whose every op is an
//! [`Op::RpcCall`] against one KV-serving rank, with the crash campaign's
//! chaos model (node kills, link partitions) riding along. Like the runtime
//! driver, a case boots real progress and scheduler threads, so it is not
//! byte-deterministic — what *is* checked, per case, is the delivery
//! contract itself:
//!
//! * **never-double-apply** — every mutating call carries a unique mutation
//!   token (derived from its op index); under at-most-once the server-side
//!   token audit must show apply-count ≤ 1 *no matter how the call
//!   resolved*, and a success reply pins the count exactly (`put` ⇒ 1,
//!   `cas → true` ⇒ 1, `cas → false` ⇒ 0);
//! * **successes really applied** — under maybe / at-least-once a success
//!   reply implies the mutation landed at least once (maybe: exactly once,
//!   since there is only one attempt);
//! * **all calls resolve** — every call returns `Ok` or a *typed* error
//!   ([`PhotonError::RpcTimeout`] / [`PhotonError::RpcFailed`]); any other
//!   error, or a call that never resolved, is a named violation.
//!
//! A nudger thread advances every rank's virtual clock while the clients
//! run, so crash times and partition windows (expressed in virtual ns) are
//! crossed even by idle ranks — the health machine's probes then converge
//! retries deterministically in virtual time.
//!
//! [`PhotonError::RpcTimeout`]: photon_core::PhotonError::RpcTimeout
//! [`PhotonError::RpcFailed`]: photon_core::PhotonError::RpcFailed

use crate::checkers::Violations;
use crate::exec::CaseReport;
use crate::fnv1a;
use crate::schedule::{FaultSpec, Op, Schedule, SimParams};
use photon_fabric::{NetworkModel, VTime, Window};
use photon_runtime::rpc::kv::{serve_kv, KvCas, KvGet, KvPut};
use photon_runtime::{ActionRegistry, RpcOptions, RtConfig, RtError, RuntimeCluster};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How one call ended, as far as the audit cares.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Resolution {
    /// `kv.get` or `kv.put` success.
    Ok,
    /// `kv.cas` success, carrying whether the swap happened.
    OkCas(bool),
    /// Resolved as [`photon_core::PhotonError::RpcTimeout`] (outcome
    /// unknown: the audit can only bound, not pin, the apply count).
    Timeout,
    /// Resolved as [`photon_core::PhotonError::RpcFailed`] (dead server or
    /// a server-side verdict).
    Failed,
    /// Any other error — always a violation.
    Unexpected(String),
}

fn classify(err: RtError) -> Resolution {
    use photon_core::PhotonError;
    match err {
        RtError::Photon(PhotonError::RpcTimeout { .. }) => Resolution::Timeout,
        RtError::Photon(PhotonError::RpcFailed { .. }) => Resolution::Failed,
        other => Resolution::Unexpected(format!("{other:?}")),
    }
}

/// The mutation token for op `idx`: unique per op, never 0 (token 0 is
/// untracked by the store's audit).
fn token_of(idx: usize) -> u64 {
    1 + idx as u64
}

/// The delivery-contract audit for one mutating call: given how the call
/// resolved and how many times the server applied its token, return the
/// violation (if any). Pure, so the checker's own sensitivity is testable.
fn audit_mutation(
    idx: usize,
    method: u8,
    policy: u8,
    res: &Resolution,
    count: u64,
) -> Option<String> {
    match policy {
        2 => {
            // At-most-once: the bound holds unconditionally, and a success
            // reply pins the count exactly.
            if count > 1 {
                return Some(format!("op {idx}: at-most-once token applied {count} times"));
            }
            match (method, res) {
                (1, Resolution::Ok) if count != 1 => {
                    Some(format!("op {idx}: at-most-once put succeeded but applied {count} times"))
                }
                (2, Resolution::OkCas(true)) if count != 1 => {
                    Some(format!("op {idx}: at-most-once cas swapped but applied {count} times"))
                }
                (2, Resolution::OkCas(false)) if count != 0 => Some(format!(
                    "op {idx}: at-most-once cas replied false but applied {count} times"
                )),
                _ => None,
            }
        }
        1 => match (method, res) {
            (1, Resolution::Ok) | (2, Resolution::OkCas(true)) if count == 0 => {
                Some(format!("op {idx}: at-least-once success but token never applied"))
            }
            _ => None,
        },
        _ => {
            // Maybe: one attempt, so one delivery at most — a success means
            // exactly one execution.
            if matches!((method, res), (1, Resolution::Ok) | (2, Resolution::OkCas(true)))
                && count != 1
            {
                Some(format!("op {idx}: maybe-policy success but token applied {count} times"))
            } else {
                None
            }
        }
    }
}

/// Run one seeded rpc chaos case. The schedule, fault plan and chaos are
/// deterministic per `(seed, case_id)`; thread interleavings are not, so
/// the digest hashes only stable facts.
pub fn run_rpc_case(seed: u64, case_id: u64, params: &SimParams) -> CaseReport {
    let sched = Schedule::generate(seed, case_id, params);
    let n = sched.nodes;
    let server = sched.rpc_server.expect("rpc schedules carry a server rank");
    let model = match sched.model {
        0 => NetworkModel::ideal(),
        1 => NetworkModel::ib_fdr(),
        _ => NetworkModel::ethernet_10g(),
    };
    let cluster = RuntimeCluster::new(
        n,
        model,
        RtConfig { photon: sched.cfg, ..RtConfig::default() },
        ActionRegistry::new(),
    );

    // Fault plan and chaos ops install before any traffic flows, exactly
    // like the deterministic executor does.
    {
        let faults = cluster.photon().fabric().switch().faults();
        faults.set_jitter_seed(seed ^ case_id);
        for f in &sched.faults {
            match *f {
                FaultSpec::DegradeLink { src, dst, extra_ns, from_ns, until_ns } => {
                    faults.degrade_link_during(
                        src,
                        dst,
                        extra_ns,
                        Window::new(VTime(from_ns), VTime(until_ns)),
                    );
                }
                FaultSpec::StraggleNode { node, extra_ns, from_ns, until_ns } => {
                    faults.straggle_node_during(
                        node,
                        extra_ns,
                        Window::new(VTime(from_ns), VTime(until_ns)),
                    );
                }
                FaultSpec::Jitter { bound_ns, seed, from_ns, until_ns } => {
                    faults.set_jitter_seed(seed);
                    faults
                        .set_jitter_during(bound_ns, Window::new(VTime(from_ns), VTime(until_ns)));
                }
            }
        }
        for op in &sched.ops {
            match *op {
                Op::CrashNode { node, at_ns } => faults.kill_node_at(node, VTime(at_ns)),
                Op::Partition { a, b, from_ns, until_ns } => {
                    faults.partition_during(a, b, Window::new(VTime(from_ns), VTime(until_ns)));
                }
                _ => {}
            }
        }
    }

    let store = serve_kv(cluster.node(server));

    // Each client rank runs its calls in schedule order; ranks run
    // concurrently (the many-clients-one-server shape).
    let mut per_client: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, op) in sched.ops.iter().enumerate() {
        if let Op::RpcCall { client, .. } = *op {
            per_client[client].push(i);
        }
    }
    let outcomes: Vec<Mutex<Option<Resolution>>> =
        sched.ops.iter().map(|_| Mutex::new(None)).collect();

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Clock nudger: idle ranks must still cross crash times and
        // partition windows, and heal points must stay reachable within the
        // clients' wall-clock retry budgets.
        s.spawn(|| {
            while !done.load(Ordering::Acquire) {
                for r in 0..n {
                    cluster.node(r).photon().elapse(20_000);
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        });

        let workers: Vec<_> = (0..n)
            .filter(|r| !per_client[*r].is_empty())
            .map(|r| {
                let (cluster, sched, outcomes, per_client, store) =
                    (&cluster, &sched, &outcomes, &per_client, &store);
                s.spawn(move || {
                    let client = cluster.node(r).rpc_client(server);
                    for &idx in &per_client[r] {
                        // Advance this rank's virtual clock between calls:
                        // chaos times are virtual, and without this a whole
                        // schedule completes in a few µs of virtual time,
                        // landing every late crash *after* the traffic it
                        // was meant to disrupt.
                        cluster.node(r).photon().elapse(20_000);
                        let Op::RpcCall { method, key, policy, .. } = sched.ops[idx] else {
                            unreachable!("per_client holds only rpc ops");
                        };
                        let opts = match policy {
                            0 => RpcOptions::maybe(),
                            1 => RpcOptions::at_least_once(),
                            _ => RpcOptions::at_most_once(),
                        }
                        .with_timeout(Duration::from_millis(10))
                        .with_attempts(3);
                        let token = token_of(idx);
                        let res = match method {
                            0 => client
                                .call::<KvGet>(&vec![key], opts)
                                .map(|_| Resolution::Ok)
                                .unwrap_or_else(classify),
                            1 => client
                                .call::<KvPut>(
                                    &(vec![key], token.to_le_bytes().to_vec(), token),
                                    opts,
                                )
                                .map(|()| Resolution::Ok)
                                .unwrap_or_else(classify),
                            _ => {
                                // Expected value sampled racily from the
                                // store: contention decides whether the swap
                                // lands, which is exactly the point.
                                let expected = store.get(&[key]);
                                client
                                    .call::<KvCas>(
                                        &(vec![key], expected, token.to_le_bytes().to_vec(), token),
                                        opts,
                                    )
                                    .map(Resolution::OkCas)
                                    .unwrap_or_else(classify)
                            }
                        };
                        *outcomes[idx].lock().expect("outcome lock") = Some(res);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("client worker");
        }
        done.store(true, Ordering::Release);
    });

    // The audit: read the server-side token counts against each call's
    // recorded resolution.
    let mut violations = Violations::default();
    let mut resolved_err = 0u64;
    let mut rpc_ops = 0usize;
    for (idx, op) in sched.ops.iter().enumerate() {
        let Op::RpcCall { method, policy, .. } = *op else { continue };
        rpc_ops += 1;
        let res = outcomes[idx].lock().expect("outcome lock").clone();
        let Some(res) = res else {
            violations.push(format!("op {idx}: call never resolved"));
            continue;
        };
        if let Resolution::Unexpected(msg) = &res {
            violations.push(format!("op {idx}: untyped error {msg}"));
            continue;
        }
        if matches!(res, Resolution::Timeout | Resolution::Failed) {
            resolved_err += 1;
        }
        if method == 0 {
            continue; // gets mutate nothing; resolution was the whole check
        }
        let count = store.apply_count(token_of(idx));
        if let Some(v) = audit_mutation(idx, method, policy, &res, count) {
            violations.push(v);
        }
    }
    cluster.shutdown();

    let digest_src = format!(
        "n={n} server={server} rpc_ops={rpc_ops} ops={} v={:?}",
        sched.ops.len(),
        violations.items()
    );
    CaseReport {
        seed,
        case_id,
        violations: violations.into_items(),
        digest: fnv1a(digest_src.as_bytes()),
        sweeps: 0,
        resolved_err,
        stats: Vec::new(),
        trace_csv: Vec::new(),
        span_json: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_cases_hold_invariants() {
        let p = SimParams::rpc();
        for case in 0..2 {
            let rep = run_rpc_case(0x59C0, case, &p);
            assert!(rep.violations.is_empty(), "case {case}: {:?}", rep.violations);
        }
    }

    #[test]
    fn audit_catches_contract_breaches() {
        use Resolution::{Failed, Ok as ROk, OkCas, Timeout};
        // At-most-once: a double-apply is a violation no matter how the
        // call resolved; a success pins the count exactly.
        assert!(audit_mutation(0, 1, 2, &Timeout, 2).is_some());
        assert!(audit_mutation(0, 2, 2, &Failed, 2).is_some());
        assert!(audit_mutation(0, 1, 2, &ROk, 0).is_some());
        assert!(audit_mutation(0, 2, 2, &OkCas(true), 0).is_some());
        assert!(audit_mutation(0, 2, 2, &OkCas(false), 1).is_some());
        // ...and the legal shapes pass.
        assert!(audit_mutation(0, 1, 2, &ROk, 1).is_none());
        assert!(audit_mutation(0, 1, 2, &Timeout, 0).is_none());
        assert!(audit_mutation(0, 1, 2, &Timeout, 1).is_none());
        assert!(audit_mutation(0, 2, 2, &OkCas(false), 0).is_none());
        // At-least-once: a success that never applied is a violation; a
        // retried double-apply is allowed.
        assert!(audit_mutation(0, 1, 1, &ROk, 0).is_some());
        assert!(audit_mutation(0, 2, 1, &OkCas(true), 0).is_some());
        assert!(audit_mutation(0, 1, 1, &ROk, 3).is_none());
        assert!(audit_mutation(0, 2, 1, &OkCas(false), 1).is_none());
        // Maybe: single attempt, so a success means exactly one apply.
        assert!(audit_mutation(0, 1, 0, &ROk, 2).is_some());
        assert!(audit_mutation(0, 1, 0, &ROk, 1).is_none());
        assert!(audit_mutation(0, 1, 0, &Timeout, 0).is_none());
    }

    #[test]
    fn rpc_schedules_are_all_calls_against_one_server() {
        let p = SimParams::rpc();
        for case in 0..20 {
            let s = Schedule::generate(0xC1C6, case, &p);
            let server = s.rpc_server.expect("rpc preset sets a server");
            assert!(server < s.nodes);
            for op in &s.ops {
                match *op {
                    Op::RpcCall { client, server: srv, method, key, policy } => {
                        assert_eq!(srv, server);
                        assert_ne!(client, server, "clients never share the server rank");
                        assert!(client < s.nodes && method < 3 && key < 8 && policy < 3);
                    }
                    Op::CrashNode { .. } | Op::Partition { .. } => {}
                    other => panic!("non-rpc data op {other:?} in an rpc schedule"),
                }
            }
            assert!(
                s.ops.iter().any(|o| matches!(o, Op::RpcCall { .. })),
                "case {case} generated no calls"
            );
        }
    }
}
