//! Churn campaign driver: gossip membership + lazy connection cache under
//! node kills, rejoins and late joins, at cluster sizes far beyond what the
//! schedule executor drives.
//!
//! Unlike the runtime driver (real threads per node), a churn case runs the
//! Photon-core stack single-threaded: one [`photon_core::PhotonCluster`]
//! plus one [`photon_core::Membership`] instance per rank, stepped in rank
//! order. The simulated fabric applies RDMA effects synchronously at post
//! and the health gate rides its backoff probes to a verdict inside the
//! blocking wrappers, so a case is a pure function of `(seed, case_id)` —
//! which is what lets the campaign pin 1000-node cases by seed.
//!
//! Each case generates a churn plan — crashes mid-traffic, crash-then-rejoin
//! windows, and "late joiners" (killed at t≈0, revived mid-run: the join
//! case) — then interleaves point-to-point traffic (PWC puts and eager
//! sends, some deliberately aimed at dead ranks) with gossip rounds.
//! Checked invariants:
//!
//! * **all-ops-resolve** — every accepted op resolves to a success or a
//!   typed error (`OpFailed`/`PeerDead`); a `Timeout` is a named violation;
//! * **payload integrity** — puts into never-churned ranks are verified
//!   byte-for-byte after their remote completion surfaces;
//! * **membership convergence** — after the last churn event, every live
//!   rank's view must reach the fabric's ground truth (dead ranks Dead,
//!   rejoined ranks Alive at their *new* incarnation) within
//!   `4·log2(n) + 16` gossip rounds;
//! * **reconnect-on-demand** — traffic to a rejoined rank must succeed
//!   again (the dead-map gate clears on the incarnation bump), and traffic
//!   to a still-dead rank must keep failing `PeerDead`;
//! * **bounded state** — with a finite connection-cache cap the cached-conn
//!   count never exceeds it, the membership view stays within 64 bytes per
//!   member, and no live rank ends the case with in-flight work requests.

use crate::checkers::Violations;
use crate::exec::CaseReport;
use crate::schedule::SimParams;
use crate::{fnv1a, splitmix64};
use photon_core::{
    Completion, CompletionClass, MemberStatus, Membership, MembershipConfig, PhotonCluster,
    PhotonConfig, PhotonError, ProbeFlags,
};
use photon_fabric::{NetworkModel, VTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;

/// Virtual nanoseconds each driver step advances every rank's clock.
const STEP_NS: u64 = 20_000;

/// What the churn plan does to one rank.
#[derive(Debug, Clone, Copy, Default)]
struct Fate {
    /// Step at whose start the kill takes effect; `usize::MAX` marks a
    /// late joiner (killed at t=1ns, before any traffic).
    kill_step: Option<usize>,
    /// Step at whose start the revive takes effect.
    revive_step: Option<usize>,
}

impl Fate {
    fn churned(&self) -> bool {
        self.kill_step.is_some()
    }

    /// Fabric-liveness during step `s` (clocks sit past the step boundary).
    /// A late joiner (`kill_step == usize::MAX`, killed at t=1ns) is dead
    /// from step 0 until its revive step.
    fn alive_at(&self, s: usize) -> bool {
        match (self.kill_step, self.revive_step) {
            (None, _) => true,
            (Some(k), None) => s < k,
            (Some(k), Some(r)) => (k != usize::MAX && s < k) || s >= r,
        }
    }

    fn alive_at_end(&self) -> bool {
        self.kill_step.is_none() || self.revive_step.is_some()
    }

    /// The fabric incarnation the rank holds once all plan events passed.
    fn final_inc(&self) -> u64 {
        u64::from(self.revive_step.is_some())
    }
}

/// Aggregate measurements of one churn case, for the E22 experiment and the
/// scaling tests. Everything here is deterministic per `(seed, case_id)`.
#[derive(Debug, Clone, Default)]
pub struct ChurnMetrics {
    /// Cluster size.
    pub nodes: usize,
    /// Traffic steps driven before the convergence phase.
    pub steps: usize,
    /// Connection-cache capacity the case ran with (0 = unbounded).
    pub cache_cap: usize,
    /// Gossip rounds the convergence phase needed after the last churn
    /// event (`None` ⇒ the budget was exhausted — also a violation).
    pub conv_rounds: Option<u64>,
    /// Largest per-rank connection-cache footprint at case end, bytes.
    pub max_conn_state: usize,
    /// Largest per-rank membership-view footprint at case end, bytes.
    pub max_member_state: usize,
    /// Ops accepted by a post (puts and sends).
    pub posted: u64,
    /// Accepted ops that resolved successfully.
    pub resolved_ok: u64,
    /// Accepted or attempted ops that resolved as typed errors.
    pub resolved_err: u64,
    /// Gossip messages sent across all ranks.
    pub gossip_msgs: u64,
    /// Gossip rounds run across all ranks.
    pub gossip_rounds: u64,
    /// Deaths ranks learned from gossip before local detection.
    pub deaths_gossip: u64,
    /// Send attempts the rejoin-reconnect check needed in total.
    pub reconnect_attempts: u64,
}

/// Run one seeded churn case under the campaign parameters.
pub fn run_churn_case(seed: u64, case_id: u64, params: &SimParams) -> CaseReport {
    run_churn_case_metrics(seed, case_id, params, None).0
}

/// [`run_churn_case`] variant that also returns the case's measurements.
/// `cap_override` pins the connection-cache capacity (the E22 sweep and the
/// scaling test need it held constant while `n` varies); `None` draws it
/// from the case RNG like the campaign does.
pub fn run_churn_case_metrics(
    seed: u64,
    case_id: u64,
    params: &SimParams,
    cap_override: Option<usize>,
) -> (CaseReport, ChurnMetrics) {
    let mut rng = StdRng::seed_from_u64(seed ^ case_id.wrapping_mul(0xC11A_0A0F_5EED_C0DE));
    let mut violations = Violations::default();

    let n = rng.gen_range(params.min_nodes..=params.max_nodes);
    let steps = rng.gen_range(params.min_ops..=params.max_ops).max(12);
    let drawn_cap = [0usize, 8, 16][rng.gen_range(0..3usize)];
    let cap = cap_override.unwrap_or(drawn_cap);
    let connect_cost = [0u64, 500][rng.gen_range(0..2usize)];
    let fanout = rng.gen_range(2..=3);

    // Fast-death health knobs: the full backoff ride (deadline + 5 probes)
    // spans ≈70k virtual ns, well inside every kill→revive window the plan
    // generates (≥5 steps of 20k ns), so crashes are always detectable.
    let cfg = PhotonConfig {
        eager_threshold: 1024,
        eager_ring_bytes: 8 * 1024,
        ledger_entries: 32,
        credit_interval: 8,
        conn_cache_cap: cap,
        connect_cost_ns: connect_cost,
        suspect_deadline_ns: 5_000,
        backoff_base_ns: 2_000,
        backoff_max_ns: 40_000,
        suspect_death_probes: 5,
        ..PhotonConfig::default()
    };

    // ---- churn plan: distinct victims, at least two ranks never churned.
    // `crash_pct` is the campaign's churn-rate axis (E22 sweeps it): 100
    // churns up to 10% of the cluster, bounded at 64 victims so the
    // convergence budget stays meaningful at every size.
    let mut fate = vec![Fate::default(); n];
    let max_victims = (n * params.crash_pct as usize / 1000).clamp(1, 64);
    let n_victims = rng.gen_range(1..=max_victims);
    let mut victims: Vec<usize> = Vec::new();
    while victims.len() < n_victims {
        let v = rng.gen_range(0..n);
        if !victims.contains(&v) {
            victims.push(v);
        }
    }
    for &v in &victims {
        let roll = rng.gen_range(0u8..100);
        if roll < 30 && n >= 8 {
            // Late joiner: dead before any traffic, joins mid-run.
            fate[v] = Fate {
                kill_step: Some(usize::MAX),
                revive_step: Some(rng.gen_range(steps / 3..2 * steps / 3)),
            };
        } else {
            let k = rng.gen_range(2..steps - 4);
            let revive =
                if roll < 65 && k + 5 < steps { Some(rng.gen_range(k + 5..steps)) } else { None };
            fate[v] = Fate { kill_step: Some(k), revive_step: revive };
        }
    }

    let c = PhotonCluster::new(n, NetworkModel::ideal(), cfg);
    for (r, f) in fate.iter().enumerate() {
        if let Some(k) = f.kill_step {
            let at = if k == usize::MAX { 1 } else { k as u64 * STEP_NS + 1 };
            c.fabric().switch().faults().kill_node_at(r, VTime(at));
        }
        if let Some(rv) = f.revive_step {
            c.fabric().switch().faults().revive_node_at(r, VTime(rv as u64 * STEP_NS + 1));
        }
    }

    let mcfg = MembershipConfig { fanout, interval_ns: 0, max_rumors: 64 };
    let ms: Vec<Membership> = c
        .ranks()
        .iter()
        .map(|p| Membership::new(Arc::clone(p), mcfg, seed ^ case_id.rotate_left(17)))
        .collect();

    // One registered buffer per rank: puts land in a per-source slot so an
    // immediate read-back can verify integrity without cross-op races.
    let bufs: Vec<_> = c.ranks().iter().map(|p| p.register_buffer(1024).expect("buf")).collect();
    let descs: Vec<_> = bufs.iter().map(|b| b.descriptor()).collect();

    let mut m = ChurnMetrics { nodes: n, steps, cache_cap: cap, ..ChurnMetrics::default() };
    let alive_at = |r: usize, s: usize| fate[r].alive_at(s);
    let ops_per_step = (n / 16).clamp(2, 24);
    let mut next_rid = vec![1u64; n];
    let mut rrid_seq = 0x10_0000u64;
    let mut evbuf: Vec<Completion> = Vec::new();
    let mut op_no = 0u64;

    for s in 0..steps {
        for p in c.ranks() {
            p.elapse(STEP_NS);
        }
        let live: Vec<usize> = (0..n).filter(|&r| alive_at(r, s)).collect();

        for _ in 0..ops_per_step {
            let src = live[rng.gen_range(0..live.len())];
            let mut dst = rng.gen_range(0..n);
            if dst == src {
                dst = (dst + 1) % n;
            }
            let len = rng.gen_range(8usize..=128);
            let fill = splitmix64(seed ^ op_no.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            op_no += 1;
            let payload: Vec<u8> =
                (0..len).map(|i| (fill.rotate_left((i % 57) as u32) as u8) ^ i as u8).collect();
            let p = c.rank(src);
            rrid_seq += 1;
            let rrid = rrid_seq;

            if rng.gen_range(0u8..100) < 50 {
                // PWC put into dst's per-source slot.
                let doff = (src % 8) * 128;
                let rid = next_rid[src];
                next_rid[src] += 1;
                bufs[src].write_at(0, &payload);
                match p.put_with_completion(dst, &bufs[src], 0, len, &descs[dst], doff, rid, rrid) {
                    Ok(()) => {
                        m.posted += 1;
                        match p.wait_local(rid) {
                            Ok(_) => {
                                m.resolved_ok += 1;
                                // Integrity + remote delivery, but only for
                                // targets the plan never touches: a churned
                                // target may legitimately lose the frame.
                                if !fate[dst].churned() {
                                    verify_put(
                                        &c,
                                        dst,
                                        rrid,
                                        doff,
                                        &payload,
                                        &bufs,
                                        &mut evbuf,
                                        &mut violations,
                                    );
                                }
                            }
                            Err(PhotonError::OpFailed { .. }) | Err(PhotonError::PeerDead(_)) => {
                                m.resolved_err += 1;
                            }
                            Err(e) => violations.push(format!(
                                "put rid {rid} from {src} to {dst} did not resolve typed: {e}"
                            )),
                        }
                    }
                    Err(PhotonError::PeerDead(_)) | Err(PhotonError::WouldBlock) => {
                        m.resolved_err += 1;
                    }
                    Err(e) => violations.push(format!("put post {src}->{dst} failed oddly: {e}")),
                }
            } else {
                match p.send(dst, &payload, rrid) {
                    Ok(()) => {
                        m.posted += 1;
                        m.resolved_ok += 1;
                    }
                    Err(PhotonError::PeerDead(_)) | Err(PhotonError::WouldBlock) => {
                        m.resolved_err += 1;
                    }
                    Err(e) => violations.push(format!("send {src}->{dst} failed oddly: {e}")),
                }
            }
        }

        // Gossip: feed direct death verdicts, then one round per live rank.
        for &r in &live {
            for peer in c.rank(r).take_dead_peers() {
                ms[r].note_dead(peer);
            }
            ms[r].tick();
        }
        // Drain surfaced events so queues stay bounded under churn.
        for &r in &live {
            let _ = c.rank(r).poll_completions(ProbeFlags::Any, &mut evbuf, 256);
            evbuf.clear();
        }
    }

    // ---- convergence phase: all churn events are in the past once every
    // clock passes the plan horizon; gossip must now reach ground truth.
    for p in c.ranks() {
        p.elapse((steps as u64 + 4) * STEP_NS);
    }
    let live_end: Vec<usize> = (0..n).filter(|&r| fate[r].alive_at_end()).collect();
    let budget = 4 * (usize::BITS - n.leading_zeros()) as u64 + 16;
    for round in 1..=budget {
        for &r in &live_end {
            for peer in c.rank(r).take_dead_peers() {
                ms[r].note_dead(peer);
            }
            ms[r].tick();
        }
        for &r in &live_end {
            c.rank(r).elapse(STEP_NS);
        }
        if divergence(&ms, &fate, &live_end).is_none() {
            m.conv_rounds = Some(round);
            break;
        }
    }
    if m.conv_rounds.is_none() {
        let why = divergence(&ms, &fate, &live_end).unwrap_or_default();
        violations
            .push(format!("membership failed to converge within {budget} gossip rounds: {why}"));
    }

    // ---- reconnect-on-demand: rejoined ranks must accept traffic again;
    // permanently dead ranks must keep refusing it.
    for (j, f) in fate.iter().enumerate() {
        if !(f.churned() && f.alive_at_end()) {
            continue;
        }
        for &src in live_end.iter().filter(|&&r| r != j).take(3) {
            let p = c.rank(src);
            let mut ok = false;
            for _ in 0..30 {
                m.reconnect_attempts += 1;
                rrid_seq += 1;
                match p.send(j, b"rejoin-hello", rrid_seq) {
                    Ok(()) => {
                        ok = true;
                        break;
                    }
                    Err(PhotonError::PeerDead(_)) | Err(PhotonError::WouldBlock) => {
                        p.elapse(STEP_NS);
                    }
                    Err(e) => {
                        violations.push(format!("reconnect {src}->{j} failed oddly: {e}"));
                        break;
                    }
                }
            }
            if !ok {
                violations.push(format!(
                    "rank {src} could not reconnect to rejoined rank {j} (incarnation gate stuck)"
                ));
            }
        }
    }
    if let Some(&probe_src) = live_end.first() {
        for (j, f) in fate.iter().enumerate() {
            if f.alive_at_end() || j == probe_src {
                continue;
            }
            rrid_seq += 1;
            match c.rank(probe_src).send(j, b"necromancy", rrid_seq) {
                Err(PhotonError::PeerDead(_)) => {}
                Ok(()) => violations.push(format!("dead rank {j} accepted traffic at case end")),
                Err(e) => violations.push(format!("probe of dead rank {j} failed oddly: {e}")),
            }
        }
    }

    // ---- bounded-state checks and measurements.
    for &r in &live_end {
        let p = c.rank(r);
        for peer in p.take_dead_peers() {
            ms[r].note_dead(peer);
        }
        let conns = p.peer_states().len();
        if cap != 0 && conns > cap {
            violations.push(format!("rank {r} caches {conns} conns, cap {cap}"));
        }
        let member = ms[r].state_bytes();
        if member > 64 * n {
            violations.push(format!("rank {r} membership view {member} bytes for n={n}"));
        }
        if p.in_flight() != 0 {
            violations.push(format!("rank {r} ends with {} in-flight wrs", p.in_flight()));
        }
        m.max_conn_state = m.max_conn_state.max(p.conn_state_bytes());
        m.max_member_state = m.max_member_state.max(member);
        let s = ms[r].stats();
        m.gossip_msgs += s.gossip_msgs_tx;
        m.gossip_rounds += s.gossip_rounds;
        m.deaths_gossip += s.deaths_gossip;
    }

    // ---- digest: every deterministic fact that should stay pinned.
    let mut digest_src = String::new();
    let _ = write!(
        digest_src,
        "churn n={n} steps={steps} cap={cap} cost={connect_cost} fanout={fanout};"
    );
    for (r, f) in fate.iter().enumerate() {
        if f.churned() {
            let _ = write!(digest_src, "fate {r}:{:?}/{:?};", f.kill_step, f.revive_step);
        }
    }
    let _ = write!(
        digest_src,
        "posted={} ok={} err={} conv={:?} reconn={} gmsgs={} grounds={} dg={} mem={}/{};",
        m.posted,
        m.resolved_ok,
        m.resolved_err,
        m.conv_rounds,
        m.reconnect_attempts,
        m.gossip_msgs,
        m.gossip_rounds,
        m.deaths_gossip,
        m.max_conn_state,
        m.max_member_state
    );
    for &r in &live_end {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for e in ms[r].view() {
            h = h
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(e.rank as u64)
                .wrapping_add(e.incarnation << 8)
                .wrapping_add(e.status as u64 + 1);
        }
        let _ = write!(digest_src, "{r}:{h:x};");
    }

    let resolved_err = m.resolved_err;
    (
        CaseReport {
            seed,
            case_id,
            violations: violations.into_items(),
            digest: fnv1a(digest_src.as_bytes()),
            sweeps: steps as u64,
            resolved_err,
            stats: Vec::new(),
            trace_csv: Vec::new(),
            span_json: String::new(),
        },
        m,
    )
}

/// Wait for the put's remote completion at `dst` and verify the payload
/// landed intact. Only called for never-churned targets.
#[allow(clippy::too_many_arguments)]
fn verify_put(
    c: &PhotonCluster,
    dst: usize,
    rrid: u64,
    doff: usize,
    payload: &[u8],
    bufs: &[photon_core::PhotonBuffer],
    evbuf: &mut Vec<Completion>,
    violations: &mut Violations,
) {
    let d = c.rank(dst);
    let mut seen = false;
    for _ in 0..50 {
        let _ = d.poll_completions(ProbeFlags::Any, evbuf, 64);
        for ev in evbuf.drain(..) {
            if ev.class == CompletionClass::Remote && ev.rid == rrid {
                seen = true;
            }
        }
        if seen {
            break;
        }
        // The producer's clock may run ahead (probe rides); catch up.
        d.elapse(5_000);
    }
    if !seen {
        violations.push(format!("remote completion rid {rrid:#x} never surfaced at rank {dst}"));
        return;
    }
    if bufs[dst].to_vec(doff, payload.len()) != payload {
        violations.push(format!("payload corrupt at rank {dst} off {doff} len {}", payload.len()));
    }
}

/// First discrepancy between live ranks' views and fabric ground truth, or
/// `None` once converged: dead ranks seen Dead, live ranks seen Alive, and
/// rejoined ranks known at their new incarnation.
fn divergence(ms: &[Membership], fate: &[Fate], live_end: &[usize]) -> Option<String> {
    for &i in live_end {
        for (j, f) in fate.iter().enumerate() {
            if j == i {
                continue;
            }
            let st = ms[i].status_of(j);
            if f.alive_at_end() {
                if st != MemberStatus::Alive {
                    return Some(format!("rank {i} sees live rank {j} as {st:?}"));
                }
                let want = f.final_inc();
                if want > 0 {
                    match ms[i].entry_of(j) {
                        Some(e) if e.incarnation == want => {}
                        Some(e) => {
                            return Some(format!(
                                "rank {i} knows rejoined rank {j} at incarnation {} (want {want})",
                                e.incarnation
                            ));
                        }
                        None => {
                            return Some(format!("rank {i} never heard of rejoined rank {j}"));
                        }
                    }
                }
            } else if st != MemberStatus::Dead {
                return Some(format!("rank {i} sees dead rank {j} as {st:?}"));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_cases_are_deterministic() {
        let params = SimParams::churn();
        let (a, am) = run_churn_case_metrics(0xC0DE, 3, &params, None);
        let (b, bm) = run_churn_case_metrics(0xC0DE, 3, &params, None);
        assert!(a.passed(), "{:?}", a.violations);
        assert_eq!(a.digest, b.digest);
        assert_eq!(am.conv_rounds, bm.conv_rounds);
        assert_eq!(am.max_conn_state, bm.max_conn_state);
    }

    #[test]
    fn churn_preset_cases_pass() {
        let params = SimParams::churn();
        for case_id in 0..4 {
            let rep = run_churn_case(0x05EE_DC41, case_id, &params);
            assert!(rep.passed(), "case {case_id}: {:?}", rep.violations);
        }
    }

    #[test]
    fn churn_cases_exercise_gossip_and_churn() {
        // The plan generator must actually produce churn, and convergence
        // must be gossip-driven (not every rank detecting every death).
        let params = SimParams::churn();
        let mut any_deaths_gossip = false;
        for case_id in 0..3 {
            let (rep, m) = run_churn_case_metrics(0xFADE, case_id, &params, None);
            assert!(rep.passed(), "case {case_id}: {:?}", rep.violations);
            assert!(m.conv_rounds.is_some());
            assert!(m.posted > 0);
            assert!(m.gossip_msgs > 0);
            any_deaths_gossip |= m.deaths_gossip > 0;
        }
        assert!(any_deaths_gossip, "no case disseminated a death via gossip");
    }
}
