//! # photon-simtest — deterministic simulation testing for Photon
//!
//! A seeded chaos-campaign harness over the whole Photon stack. Each test
//! *case* is a [`schedule::Schedule`] — a generated multi-node workload
//! (puts/gets/PWC/sends, rendezvous pairs, barriers, parcel cascades) plus a
//! fault plan with virtual-time activation windows and, in the `crash`
//! campaign, node-kill and link-partition injection — executed by a
//! single-threaded deterministic stepper ([`exec`]) that drives every rank
//! through the middleware's non-blocking APIs only. Because the simulated
//! fabric applies RDMA effects synchronously at post time and the stepper
//! fixes the interleaving, a case is a pure function of `(seed, case_id)`:
//! same inputs, byte-identical traces, stats and verdicts, on any machine
//! and any `--jobs` level (campaign parallelism is *across* cases, never
//! within one).
//!
//! While a case runs, cross-layer invariants are checked continuously and at
//! quiescence ([`checkers`]): exactly-once completion per rid, payload
//! integrity via seeded fill patterns, per-rank virtual-clock monotonicity,
//! ledger/ring credit conservation (consumer truth vs. producer credit
//! words), quiescence ⇒ zero in-flight work, and harness-vs-middleware
//! stats consistency. Under chaos injection the harness additionally
//! enforces **all-ops-resolve**: every initiated op terminates in a success
//! or an error completion before quiescence, so a hang is a named
//! violation rather than a timeout (see DESIGN.md, "Failure model").
//!
//! On failure a campaign prints a one-line reproducer:
//!
//! ```text
//! SIMTEST_SEED=0x1f2e3d4c SIMTEST_CASE=137 cargo run -q -p photon-simtest --bin simtest -- replay smoke
//! ```
//!
//! which replays exactly that case, then a best-effort shrinker ([`shrink`])
//! minimizes the failing schedule. See `DESIGN.md` ("Simulation testing")
//! and the README recipe for the full workflow.

#![warn(missing_docs)]

pub mod campaign;
pub mod checkers;
pub mod churn_driver;
pub mod ds_driver;
pub mod exec;
pub mod msg_driver;
pub mod rpc_driver;
pub mod rt_driver;
pub mod schedule;
pub mod shrink;

pub use campaign::{run_campaign, Campaign, CampaignOpts, CampaignResult, CaseFailure};
pub use checkers::Violations;
pub use churn_driver::{run_churn_case, run_churn_case_metrics, ChurnMetrics};
pub use exec::{run_case, run_case_cfg, run_schedule, run_schedule_cfg, CaseReport};
pub use schedule::{FaultSpec, Op, Schedule, SimParams};
pub use shrink::{shrink_schedule, shrink_schedule_cfg, Shrunk};

/// SplitMix64: the harness's cheap stateless mixing function (fill
/// patterns, derived seeds). Matches the fabric's jitter mixer.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a 64-bit: payload checksums and case digests.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_payloads() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn splitmix_is_stateless() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
    }
}
