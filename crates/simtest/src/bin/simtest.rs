//! `simtest` — seeded chaos campaigns for the Photon stack.
//!
//! ```text
//! simtest <campaign> [--cases N] [--seed S] [--jobs N] [--no-shrink]
//! simtest all [--cases N] [--seed S] [--jobs N] [--no-shrink]
//! SIMTEST_SEED=0x… SIMTEST_CASE=… simtest replay <campaign>
//! SIMTEST_SEED=0x… SIMTEST_CASE=… simtest show <campaign>
//! ```
//!
//! Campaigns: smoke, credits, faults, quiescence, crash, rpc, ds. Exit status
//! is 1 when any case fails, so the binary gates CI directly.

use photon_simtest::campaign::{dump_span_trace, parse_u64, run_one};
use photon_simtest::{run_campaign, Campaign, CampaignOpts, Schedule};

fn usage() -> ! {
    eprintln!(
        "usage: simtest <smoke|credits|faults|quiescence|crash|rpc|ds|all> [--cases N] [--seed S] [--jobs N] [--no-shrink] [--progress-threads N]\n\
         \x20      SIMTEST_SEED=0x.. SIMTEST_CASE=n simtest replay <campaign>\n\
         \x20      SIMTEST_SEED=0x.. SIMTEST_CASE=n simtest show <campaign>"
    );
    std::process::exit(2);
}

fn env_case() -> (u64, u64) {
    let seed = std::env::var("SIMTEST_SEED").ok().and_then(|s| parse_u64(&s));
    let case = std::env::var("SIMTEST_CASE").ok().and_then(|s| parse_u64(&s));
    match (seed, case) {
        (Some(s), Some(c)) => (s, c),
        _ => {
            eprintln!("replay/show need SIMTEST_SEED and SIMTEST_CASE set (decimal or 0x-hex)");
            std::process::exit(2);
        }
    }
}

fn campaign_arg(args: &[String]) -> Campaign {
    let Some(name) = args.first() else { usage() };
    let Some(c) = Campaign::from_name(name) else {
        eprintln!("unknown campaign '{name}'");
        usage();
    };
    c
}

fn parse_opts(args: &[String]) -> CampaignOpts {
    let mut opts = CampaignOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> u64 {
            it.next().and_then(|v| parse_u64(v)).unwrap_or_else(|| {
                eprintln!("{what} needs a numeric value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--cases" => opts.cases = num("--cases"),
            "--seed" => opts.seed = num("--seed"),
            "--jobs" => opts.jobs = num("--jobs") as usize,
            "--no-shrink" => opts.shrink = false,
            "--progress-threads" => {
                opts.progress_threads = num("--progress-threads") as usize;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                usage();
            }
        }
    }
    opts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };

    match cmd.as_str() {
        "replay" => {
            let campaign = campaign_arg(&args[1..]);
            let (seed, case_id) = env_case();
            let rep = run_one(campaign, seed, case_id);
            if rep.passed() {
                println!(
                    "case ({seed:#x}, {case_id}) of {} PASSED (digest {:#018x}, {} sweeps, {} resolved-as-error)",
                    campaign.name(),
                    rep.digest,
                    rep.sweeps,
                    rep.resolved_err
                );
            } else {
                println!("case ({seed:#x}, {case_id}) of {} FAILED:", campaign.name());
                for v in &rep.violations {
                    println!("  - {v}");
                }
                if let Some(p) = dump_span_trace(campaign.name(), &rep) {
                    println!("  span trace: {}", p.display());
                }
                std::process::exit(1);
            }
        }
        "show" => {
            let campaign = campaign_arg(&args[1..]);
            let (seed, case_id) = env_case();
            println!("{}", Schedule::generate(seed, case_id, &campaign.params()));
        }
        "all" => {
            let opts = parse_opts(&args[1..]);
            let mut failed = false;
            for c in Campaign::all() {
                let r = run_campaign(c, &opts);
                print!("{}", r.summary());
                failed |= !r.passed();
            }
            if failed {
                std::process::exit(1);
            }
        }
        _ => {
            let campaign = campaign_arg(&args);
            let opts = parse_opts(&args[1..]);
            let r = run_campaign(campaign, &opts);
            print!("{}", r.summary());
            if !r.passed() {
                std::process::exit(1);
            }
        }
    }
}
