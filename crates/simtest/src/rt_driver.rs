//! Runtime-layer (parcel/active-message) workload driver.
//!
//! Unlike the Photon-core and msg drivers, [`photon_runtime::RuntimeCluster`]
//! boots real progress and scheduler threads per node, so a runtime case is
//! **not** byte-deterministic — thread interleavings vary. What *is*
//! invariant, and what this driver checks after collective quiescence:
//!
//! * exactly-once parcel execution — a seeded fan-out cascade's execution
//!   count equals the closed-form tree size, never more, never fewer;
//! * payload integrity through the parcel codec and eager/rendezvous paths;
//! * quiescence really quiesced — every parcel sent anywhere has run
//!   (`Σ parcels_sent == Σ parcels_run` across ranks).
//!
//! The digest hashes only these stable facts (never timing-dependent
//! counters such as coalesced batch counts), so replaying a seed still
//! yields a comparable verdict.

use crate::checkers::Violations;
use crate::exec::CaseReport;
use crate::{fnv1a, splitmix64};
use photon_core::PhotonConfig;
use photon_fabric::NetworkModel;
use photon_runtime::{ActionRegistry, RtConfig, RuntimeCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Closed-form size of one cascade: `fanout` initial parcels, each delivery
/// with remaining ttl spawning `fanout` children.
fn cascade_size(fanout: u64, ttl: u32) -> u64 {
    let mut per = 1u64;
    for _ in 0..ttl {
        per = 1 + fanout * per;
    }
    fanout * per
}

/// Run one seeded runtime case; invariants are deterministic per seed even
/// though thread interleavings are not.
pub fn run_runtime_case(seed: u64, case_id: u64) -> CaseReport {
    let mut rng = StdRng::seed_from_u64(seed ^ case_id.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    let n = rng.gen_range(3usize..=5);
    let fanout = rng.gen_range(2u64..=3);
    let ttl = rng.gen_range(1u32..=3);
    let expected = cascade_size(fanout, ttl);

    let ran = Arc::new(AtomicU64::new(0));
    let corrupt = Arc::new(AtomicU64::new(0));
    // The handler needs its own action id to re-send; the id is only known
    // after registration, so thread it through a cell the closure captures.
    let self_id = Arc::new(AtomicU32::new(0));
    let mut reg = ActionRegistry::new();
    let (ran_c, corrupt_c, self_id_c) = (ran.clone(), corrupt.clone(), self_id.clone());
    let cascade = reg.register("cascade", move |ctx, payload| {
        // payload: [ttl u32][fanout u64][hop_seed u64][marker u64]
        if payload.len() != 28 {
            corrupt_c.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let ttl = u32::from_le_bytes(payload[0..4].try_into().expect("ttl"));
        let fanout = u64::from_le_bytes(payload[4..12].try_into().expect("fanout"));
        let hop = u64::from_le_bytes(payload[12..20].try_into().expect("hop"));
        let got_marker = u64::from_le_bytes(payload[20..28].try_into().expect("marker"));
        if got_marker != splitmix64(hop) {
            corrupt_c.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        ran_c.fetch_add(1, Ordering::Relaxed);
        if ttl > 0 {
            let me = ctx.rank();
            let id = self_id_c.load(Ordering::Relaxed);
            for c in 0..fanout {
                let child = splitmix64(hop ^ (c + 1));
                let mut dst = (child % (ctx.size() as u64 - 1)) as usize;
                if dst >= me {
                    dst += 1;
                }
                let mut p = Vec::with_capacity(28);
                p.extend_from_slice(&(ttl - 1).to_le_bytes());
                p.extend_from_slice(&fanout.to_le_bytes());
                p.extend_from_slice(&child.to_le_bytes());
                p.extend_from_slice(&splitmix64(child).to_le_bytes());
                ctx.send_parcel(dst, id, &p).expect("cascade send");
            }
        }
        None
    });
    self_id.store(cascade, Ordering::Relaxed);

    let cluster = RuntimeCluster::new(
        n,
        NetworkModel::ideal(),
        RtConfig {
            workers: 2,
            coalesce_max: if rng.gen_bool(0.5) { 4 } else { 0 },
            photon: PhotonConfig::default(),
            ..RtConfig::default()
        },
        reg,
    );

    let root = rng.gen_range(0..n);
    std::thread::scope(|s| {
        for r in 0..n {
            let cluster = &cluster;
            s.spawn(move || {
                if r == root {
                    let node = cluster.node(r);
                    for c in 0..fanout {
                        let hop = splitmix64(seed ^ case_id ^ (c + 1).rotate_left(7));
                        let mut p = Vec::with_capacity(28);
                        p.extend_from_slice(&ttl.to_le_bytes());
                        p.extend_from_slice(&fanout.to_le_bytes());
                        p.extend_from_slice(&hop.to_le_bytes());
                        p.extend_from_slice(&splitmix64(hop).to_le_bytes());
                        let mut dst = (hop % (n as u64 - 1)) as usize;
                        if dst >= r {
                            dst += 1;
                        }
                        node.send_parcel(dst, cascade, &p).expect("root send");
                    }
                }
                cluster.node(r).quiescence().expect("quiescence");
            });
        }
    });

    let mut violations = Violations::default();
    let got = ran.load(Ordering::Relaxed);
    if got != expected {
        violations.push(format!(
            "cascade executed {got} parcels, expected {expected} (fanout {fanout}, ttl {ttl})"
        ));
    }
    if corrupt.load(Ordering::Relaxed) != 0 {
        violations.push(format!(
            "{} parcels arrived corrupt (codec or transport fault)",
            corrupt.load(Ordering::Relaxed)
        ));
    }
    let (mut sent, mut run) = (0u64, 0u64);
    for r in 0..n {
        let s = cluster.node(r).stats();
        sent += s.parcels_sent;
        run += s.parcels_run;
    }
    if sent != run {
        violations.push(format!("quiescence hole: {sent} parcels sent but {run} run"));
    }
    cluster.shutdown();

    let digest_src =
        format!("n={n} fanout={fanout} ttl={ttl} expected={expected} v={:?}", violations.items());
    CaseReport {
        seed,
        case_id,
        violations: violations.into_items(),
        digest: fnv1a(digest_src.as_bytes()),
        sweeps: 0,
        resolved_err: 0,
        stats: Vec::new(),
        trace_csv: Vec::new(),
        span_json: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cascade_size_closed_form() {
        // fanout 2, ttl 1: 2 initial + 2*2 children = 6.
        assert_eq!(cascade_size(2, 1), 6);
        assert_eq!(cascade_size(3, 0), 3);
    }

    #[test]
    fn runtime_cases_hold_invariants() {
        for case in 0..2 {
            let rep = run_runtime_case(0xC0FFEE, case);
            assert!(rep.violations.is_empty(), "case {case}: {:?}", rep.violations);
        }
    }
}
