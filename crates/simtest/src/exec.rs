//! The deterministic schedule executor.
//!
//! Drives every rank of a [`Schedule`] from **one** thread, using only the
//! middleware's non-blocking entry points (`try_put_with_completion`,
//! `try_send`, `try_post_recv_buffer`, `poll_completion`, …) in a fixed
//! round-robin sweep. The simulated fabric applies RDMA effects
//! synchronously at post time, so with the interleaving pinned the whole
//! run — traces, stats, verdicts — is a pure function of the schedule.
//!
//! Collectives are built *in the harness* (a dissemination barrier over
//! plain sends) rather than through the middleware's blocking collective
//! API, which would need one thread per rank and forfeit determinism.
//!
//! A sweep that makes no state transition can never make one later (there
//! is no background progress in a synchronous fabric), so livelock is
//! detected after a handful of idle sweeps and reported with per-rank
//! diagnostics — including the credit checkers, since lost credit returns
//! are the classic cause of protocol livelock.

use crate::checkers::{self, RankTally, Violations};
use crate::schedule::{FaultSpec, Op, Schedule, SimParams};
use crate::{fnv1a, splitmix64};
use photon_core::{
    Completion, CompletionClass, PeerHealthState, Photon, PhotonBuffer, PhotonCluster,
    PhotonConfig, PhotonError, ProbeFlags, PutManyItem, StatsSnapshot,
};
use photon_fabric::{Cluster, FabricError, NetworkModel, NicConfig, VTime, Window};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Base of the data-op rid range (well below the reserved namespace).
const RID_OP_BASE: u64 = 0x0100_0000;
/// Barrier rids: `RID_BARRIER | (barrier << 16) | (round << 8) | src`.
const RID_BARRIER: u64 = 0x2000_0000;
/// Parcel rids: `RID_PARCEL + sequence`.
const RID_PARCEL: u64 = 0x4000_0000;
/// Batched-put item rids: `RID_MANY | (op << 8) | (2*item [+1])` — the low
/// bit distinguishes local (even) from remote (odd), as in the plain range.
const RID_MANY: u64 = 0x0800_0000;

fn many_local_rid(op: usize, item: usize) -> u64 {
    RID_MANY | ((op as u64) << 8) | (2 * item as u64)
}

fn many_remote_rid(op: usize, item: usize) -> u64 {
    RID_MANY | ((op as u64) << 8) | (2 * item as u64 + 1)
}

/// Idle full sweeps before declaring the case stuck.
const IDLE_SWEEP_LIMIT: u32 = 8;
/// Hard cap on sweeps (backstop against pathological schedules).
const SWEEP_HARD_CAP: u64 = 2_000_000;

/// Outcome of one executed case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Campaign seed.
    pub seed: u64,
    /// Case index.
    pub case_id: u64,
    /// Invariant violations (empty ⇒ pass).
    pub violations: Vec<String>,
    /// FNV-1a digest of traces + stats + verdicts: the determinism witness.
    pub digest: u64,
    /// Round-robin sweeps executed.
    pub sweeps: u64,
    /// Ops that resolved as *expected* error completions (peer death or
    /// partition explained by the schedule's chaos plan). Zero on
    /// crash-free schedules.
    pub resolved_err: u64,
    /// Per-rank middleware stats at quiescence.
    pub stats: Vec<StatsSnapshot>,
    /// Per-rank trace CSVs (virtual-time ordered); empty when tracing off.
    pub trace_csv: Vec<String>,
    /// Chrome trace_event JSON of the op-lifecycle spans across all ranks.
    /// Deliberately **excluded** from `digest`: the witness predates spans
    /// and must stay byte-stable across observability changes.
    pub span_json: String,
}

impl CaseReport {
    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Generate and execute the case `(seed, case_id)` under `params`.
pub fn run_case(seed: u64, case_id: u64, params: &SimParams) -> CaseReport {
    run_schedule(&Schedule::generate(seed, case_id, params))
}

/// Generate and execute the case `(seed, case_id)` with a configuration
/// override on top of the schedule's own config — e.g. enabling the
/// dedicated progress engine (`cfg.progress_threads = 2`). With progress
/// threads active, completion fan-out timing is no longer pinned by the
/// round-robin sweep, so the report's digest is not run-to-run stable;
/// invariants and verdicts still hold and are what threaded runs assert.
pub fn run_case_cfg(
    seed: u64,
    case_id: u64,
    params: &SimParams,
    mutate: impl FnOnce(&mut PhotonConfig),
) -> CaseReport {
    run_schedule_cfg(&Schedule::generate(seed, case_id, params), mutate)
}

/// Execute an explicit schedule (shrinker entry point). Tracing on.
pub fn run_schedule(sched: &Schedule) -> CaseReport {
    run_schedule_cfg(sched, |_| {})
}

/// Execute a schedule with a configuration override applied on top of the
/// schedule's own config — the mutation-testing hook (e.g. enable
/// `skip_credit_return_interval` and assert the checkers object).
pub fn run_schedule_cfg(sched: &Schedule, mutate: impl FnOnce(&mut PhotonConfig)) -> CaseReport {
    let mut cfg = sched.cfg;
    mutate(&mut cfg);
    Executor::new(sched, cfg).run()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// The op's initiating side (sender for rendezvous).
    Init,
    /// The announcing/receiving side of a rendezvous pair.
    RdvRecv,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QItem {
    op: usize,
    role: Role,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SndState {
    WaitDesc,
    WaitPut,
    SendFin,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RcvState {
    Announce,
    WaitFin,
    Done,
}

#[derive(Debug)]
struct OpRun {
    op: Op,
    local_rid: u64,
    remote_rid: u64,
    /// (rank, offset) of the pre-filled source slice, for ops that have one.
    tx: (usize, usize),
    /// (rank, offset) of the landing slice.
    rx: (usize, usize),
    posted: bool,
    local_done: bool,
    remote_done: bool,
    /// Resolved as an expected error completion (chaos-explained peer
    /// death): terminal for every leg, exempt from duplicate/payload
    /// checks on stragglers from legs that ran before the failure.
    failed: bool,
    /// Batched puts: items posted so far / completion bitmasks per side.
    many_posted: usize,
    many_local: u32,
    many_remote: u32,
    snd: SndState,
    rcv: RcvState,
    /// Per-op registered landing buffer in registration-churn mode.
    churn_buf: Option<PhotonBuffer>,
    expected_sum: u64,
}

impl OpRun {
    fn done(&self) -> bool {
        if self.failed {
            return true;
        }
        match self.op {
            Op::Send { .. } => self.posted && self.remote_done,
            Op::PutEager { .. } | Op::PutDirect { .. } => {
                self.posted && self.local_done && self.remote_done
            }
            Op::PutMany { count, .. } => {
                self.posted
                    && self.many_local.count_ones() as usize >= count
                    && self.many_remote.count_ones() as usize >= count
            }
            Op::Get { .. } => self.posted && self.local_done,
            Op::Rendezvous { .. } => self.snd == SndState::Done && self.rcv == RcvState::Done,
            Op::Barrier | Op::ParcelTree { .. } | Op::CrashNode { .. } | Op::Partition { .. } => {
                unreachable!("not a data op")
            }
            // RPC schedules dispatch to the threaded rpc driver, never here.
            Op::RpcCall { .. } => unreachable!("rpc ops never enter the executor"),
        }
    }
}

#[derive(Debug, Default, Clone)]
struct BarRank {
    round: u8,
    send_posted: bool,
    recv_mask: u32,
    done: bool,
}

#[derive(Debug)]
struct BarrierRun {
    rounds: u8,
    per_rank: Vec<BarRank>,
}

#[derive(Debug)]
struct TreeRun {
    expected: u64,
    delivered: u64,
}

#[derive(Debug, Clone, Copy)]
struct Parcel {
    tree: u16,
    ttl: u8,
    fanout: u8,
    seed: u64,
    dst: usize,
}

const PARCEL_FILLER: usize = 16;
const PARCEL_LEN: usize = 12 + PARCEL_FILLER;

fn parcel_payload(p: &Parcel) -> Vec<u8> {
    let mut v = Vec::with_capacity(PARCEL_LEN);
    v.extend_from_slice(&p.tree.to_le_bytes());
    v.push(p.ttl);
    v.push(p.fanout);
    v.extend_from_slice(&p.seed.to_le_bytes());
    for k in 0..PARCEL_FILLER {
        v.push((splitmix64(p.seed ^ (0x1000 + k as u64)) >> 16) as u8);
    }
    v
}

/// The error shapes a post or wait toward a crashed or partition-evicted
/// peer legitimately resolves with.
fn is_death_error(e: &PhotonError) -> bool {
    matches!(
        e,
        PhotonError::PeerDead(_)
            | PhotonError::OpFailed { .. }
            | PhotonError::Fabric(FabricError::PeerUnreachable { .. })
    )
}

struct Executor<'a> {
    sched: &'a Schedule,
    cluster: PhotonCluster,
    tx_arena: Vec<PhotonBuffer>,
    rx_arena: Vec<PhotonBuffer>,
    ops: Vec<OpRun>,
    queues: Vec<Vec<QItem>>,
    next: Vec<usize>,
    active: Vec<Vec<QItem>>,
    in_barrier: Vec<Option<usize>>,
    barriers: Vec<BarrierRun>,
    bar_of_op: HashMap<usize, usize>,
    trees: Vec<TreeRun>,
    tree_of_op: HashMap<usize, usize>,
    outbox: Vec<VecDeque<Parcel>>,
    parcel_seq: u64,
    local_map: HashMap<u64, usize>,
    remote_map: HashMap<u64, usize>,
    tally: Vec<RankTally>,
    last_now: Vec<VTime>,
    violations: Violations,
    progressed: bool,
    sweeps: u64,
    /// Kill time per node from the schedule's `CrashNode` ops.
    crashed: Vec<Option<u64>>,
    /// `(a, b, from_ns, until_ns)` from the schedule's `Partition` ops.
    partitions: Vec<(usize, usize, u64, u64)>,
    /// Sorted virtual-time fault boundaries (kill instants, partition
    /// edges). When a sweep idles while an edge is still ahead of some
    /// rank's clock, the executor elapses virtual time across it — the
    /// single-threaded analogue of "everyone waits until the fault bites".
    edges: Vec<u64>,
    next_edge: usize,
    resolved_err: u64,
}

impl<'a> Executor<'a> {
    fn new(sched: &'a Schedule, cfg: PhotonConfig) -> Executor<'a> {
        let n = sched.nodes;
        let model = match sched.model {
            0 => NetworkModel::ideal(),
            1 => NetworkModel::ib_fdr(),
            _ => NetworkModel::ethernet_10g(),
        };
        let fabric = Cluster::with_config(
            n,
            model,
            NicConfig { cq_depth: sched.cq_depth, ..NicConfig::default() },
        );
        let cluster = PhotonCluster::with_fabric(fabric, cfg);
        install_faults(&cluster, sched);
        for p in cluster.ranks() {
            p.tracer().enable();
            p.obs().enable();
        }

        // ---- materialize ops, queues, rid maps, arena layout -------------
        let mut ops = Vec::with_capacity(sched.ops.len());
        let mut queues = vec![Vec::new(); n];
        let mut barriers = Vec::new();
        let mut bar_of_op = HashMap::new();
        let mut trees = Vec::new();
        let mut tree_of_op = HashMap::new();
        let mut local_map = HashMap::new();
        let mut remote_map = HashMap::new();
        let mut tx_off = vec![0usize; n];
        let mut rx_off = vec![0usize; n];
        let mut crashed: Vec<Option<u64>> = vec![None; n];
        let mut partitions: Vec<(usize, usize, u64, u64)> = Vec::new();
        let align = |x: usize| (x + 7) & !7;

        for (i, &op) in sched.ops.iter().enumerate() {
            let local_rid = RID_OP_BASE + 2 * i as u64;
            let remote_rid = RID_OP_BASE + 2 * i as u64 + 1;
            let mut run = OpRun {
                op,
                local_rid,
                remote_rid,
                tx: (usize::MAX, 0),
                rx: (usize::MAX, 0),
                posted: false,
                local_done: false,
                remote_done: false,
                failed: false,
                many_posted: 0,
                many_local: 0,
                many_remote: 0,
                snd: SndState::WaitDesc,
                rcv: RcvState::Announce,
                churn_buf: None,
                expected_sum: 0,
            };
            match op {
                Op::Send { src, dst, len } => {
                    let payload: Vec<u8> = (0..len).map(|k| sched.fill_byte(i, k)).collect();
                    run.expected_sum = fnv1a(&payload);
                    remote_map.insert(remote_rid, i);
                    queues[src].push(QItem { op: i, role: Role::Init });
                    let _ = dst;
                }
                Op::PutEager { src, dst, len } | Op::PutDirect { src, dst, len } => {
                    run.tx = (src, tx_off[src]);
                    tx_off[src] += align(len);
                    run.rx = (dst, rx_off[dst]);
                    rx_off[dst] += align(len);
                    local_map.insert(local_rid, i);
                    remote_map.insert(remote_rid, i);
                    queues[src].push(QItem { op: i, role: Role::Init });
                }
                Op::PutMany { src, dst, len, count } => {
                    run.tx = (src, tx_off[src]);
                    tx_off[src] += count * align(len);
                    run.rx = (dst, rx_off[dst]);
                    rx_off[dst] += count * align(len);
                    for j in 0..count {
                        local_map.insert(many_local_rid(i, j), i);
                        remote_map.insert(many_remote_rid(i, j), i);
                    }
                    queues[src].push(QItem { op: i, role: Role::Init });
                }
                Op::Get { src, dst, len } => {
                    run.tx = (dst, tx_off[dst]);
                    tx_off[dst] += align(len);
                    run.rx = (src, rx_off[src]);
                    rx_off[src] += align(len);
                    local_map.insert(local_rid, i);
                    queues[src].push(QItem { op: i, role: Role::Init });
                }
                Op::Rendezvous { src, dst, len, .. } => {
                    run.tx = (src, tx_off[src]);
                    tx_off[src] += align(len);
                    if !sched.reg_churn {
                        run.rx = (dst, rx_off[dst]);
                        rx_off[dst] += align(len);
                    }
                    local_map.insert(local_rid, i);
                    queues[src].push(QItem { op: i, role: Role::Init });
                    queues[dst].push(QItem { op: i, role: Role::RdvRecv });
                }
                Op::Barrier => {
                    let rounds = n.next_power_of_two().trailing_zeros() as u8;
                    let rounds = if (1usize << rounds) < n { rounds + 1 } else { rounds };
                    bar_of_op.insert(i, barriers.len());
                    barriers.push(BarrierRun { rounds, per_rank: vec![BarRank::default(); n] });
                    for q in queues.iter_mut() {
                        q.push(QItem { op: i, role: Role::Init });
                    }
                }
                Op::CrashNode { node, at_ns } => {
                    // Installed into the fault plan below; earliest kill
                    // wins if the generator names a node twice.
                    crashed[node] = Some(crashed[node].map_or(at_ns, |t| t.min(at_ns)));
                }
                Op::Partition { a, b, from_ns, until_ns } => {
                    partitions.push((a, b, from_ns, until_ns));
                }
                Op::ParcelTree { root, fanout, ttl } => {
                    // deliveries(t) = 1 + fanout * deliveries(t-1); the root
                    // itself issues `fanout` initial parcels.
                    let mut per = 1u64;
                    for _ in 0..ttl {
                        per = 1 + fanout as u64 * per;
                    }
                    tree_of_op.insert(i, trees.len());
                    trees.push(TreeRun { expected: fanout as u64 * per, delivered: 0 });
                    queues[root].push(QItem { op: i, role: Role::Init });
                }
                // RPC schedules dispatch to the threaded rpc driver
                // (campaign routing keeps them out of the executor).
                Op::RpcCall { .. } => unreachable!("rpc ops never enter the executor"),
            }
            ops.push(run);
        }

        // Chaos ops go into the fault plan like every other disruption —
        // but they live in the op list so the shrinker can delete them.
        {
            let faults = cluster.fabric().switch().faults();
            for (node, t) in crashed.iter().enumerate() {
                if let Some(t) = *t {
                    faults.kill_node_at(node, VTime(t));
                }
            }
            for &(a, b, from_ns, until_ns) in &partitions {
                faults.partition_during(a, b, Window::new(VTime(from_ns), VTime(until_ns)));
            }
        }
        let mut edges: Vec<u64> = crashed.iter().flatten().copied().collect();
        for &(_, _, from_ns, until_ns) in &partitions {
            edges.push(from_ns);
            edges.push(until_ns);
        }
        edges.sort_unstable();
        edges.dedup();

        let tx_arena: Vec<PhotonBuffer> = (0..n)
            .map(|r| cluster.rank(r).register_buffer(tx_off[r].max(8)).expect("register tx arena"))
            .collect();
        let rx_arena: Vec<PhotonBuffer> = (0..n)
            .map(|r| cluster.rank(r).register_buffer(rx_off[r].max(8)).expect("register rx arena"))
            .collect();

        // Pre-fill every source slice with its op's pattern.
        for (i, run) in ops.iter().enumerate() {
            if let Op::PutMany { len, count, .. } = run.op {
                let (r, off) = run.tx;
                for j in 0..count {
                    let bytes: Vec<u8> =
                        (0..len).map(|k| sched.fill_byte(i, j * len + k)).collect();
                    tx_arena[r].write_at(off + j * align(len), &bytes);
                }
                continue;
            }
            let len = match run.op {
                Op::PutEager { len, .. }
                | Op::PutDirect { len, .. }
                | Op::Get { len, .. }
                | Op::Rendezvous { len, .. } => len,
                _ => continue,
            };
            let (r, off) = run.tx;
            let bytes: Vec<u8> = (0..len).map(|k| sched.fill_byte(i, k)).collect();
            tx_arena[r].write_at(off, &bytes);
        }

        Executor {
            sched,
            cluster,
            tx_arena,
            rx_arena,
            ops,
            queues,
            next: vec![0; n],
            active: vec![Vec::new(); n],
            in_barrier: vec![None; n],
            barriers,
            bar_of_op,
            trees,
            tree_of_op,
            outbox: vec![VecDeque::new(); n],
            parcel_seq: 0,
            local_map,
            remote_map,
            tally: vec![RankTally::default(); n],
            last_now: vec![VTime(0); n],
            violations: Violations::default(),
            progressed: false,
            sweeps: 0,
            crashed,
            partitions,
            edges,
            next_edge: 0,
            resolved_err: 0,
        }
    }

    fn has_chaos(&self) -> bool {
        !self.edges.is_empty()
    }

    fn run(mut self) -> CaseReport {
        let n = self.sched.nodes;
        let mut idle: u32 = 0;
        while !self.all_done() {
            self.progressed = false;
            for r in 0..n {
                self.drive(r);
            }
            self.sweeps += 1;
            idle = if self.progressed { 0 } else { idle + 1 };
            if idle > 2 && self.nudge_clocks() {
                idle = 0;
            }
            if idle > IDLE_SWEEP_LIMIT || self.sweeps > SWEEP_HARD_CAP {
                self.report_stuck();
                break;
            }
        }
        // Drain stragglers (late CQEs, duplicate/unexpected events show up
        // here as routing violations).
        for _ in 0..4 {
            for r in 0..n {
                self.pump(r, 16);
            }
        }
        self.finish()
    }

    fn all_done(&self) -> bool {
        self.next.iter().enumerate().all(|(r, &nx)| nx == self.queues[r].len())
            && self.active.iter().all(|a| a.is_empty())
            && self.outbox.iter().all(|o| o.is_empty())
    }

    /// Idle with a fault boundary still ahead: elapse every rank's virtual
    /// clock across the next kill/partition edge. Virtual time only moves
    /// when someone moves it, so a schedule whose remaining work is gated
    /// on a fault activating (or healing) needs the harness to let time
    /// pass — exactly what a real run blocked on a dead peer experiences.
    /// Returns true when any clock moved.
    fn nudge_clocks(&mut self) -> bool {
        while self.next_edge < self.edges.len() {
            // +2 ns clears the boundary itself plus the half-open window
            // edge, so the next health-gate check sees the new regime.
            let target = self.edges[self.next_edge] + 2;
            self.next_edge += 1;
            let mut moved = false;
            for p in self.cluster.ranks() {
                let now = p.now().as_nanos();
                if now < target {
                    p.elapse(target - now);
                    moved = true;
                }
            }
            if moved {
                return true;
            }
        }
        false
    }

    // ------------------------------------------------------------- driving

    fn drive(&mut self, r: usize) {
        self.activate(r);
        self.advance_active(r);
        self.drain_outbox(r);
        self.pump(r, 4);
        let now = self.cluster.rank(r).now();
        if now < self.last_now[r] {
            self.violations.push(format!(
                "rank {r}: virtual clock moved backwards ({} -> {})",
                self.last_now[r].as_nanos(),
                now.as_nanos()
            ));
        } else if now > self.last_now[r] {
            // Clock movement is progress: reconnection probes of a Suspect
            // peer advance virtual time without any op-state transition,
            // and a windowed partition heals only because they do.
            self.progressed = true;
        }
        self.last_now[r] = now;
    }

    fn activate(&mut self, r: usize) {
        while self.in_barrier[r].is_none() && self.next[r] < self.queues[r].len() {
            let item = self.queues[r][self.next[r]];
            let is_barrier = matches!(self.sched.ops[item.op], Op::Barrier);
            if is_barrier {
                if !self.active[r].is_empty() {
                    return;
                }
                self.in_barrier[r] = Some(self.bar_of_op[&item.op]);
            } else {
                if self.active[r].len() >= self.sched.window {
                    return;
                }
                if let Op::ParcelTree { fanout, ttl, .. } = self.sched.ops[item.op] {
                    let tree = self.tree_of_op[&item.op] as u16;
                    for c in 0..fanout {
                        let seed = splitmix64(
                            self.sched.seed
                                ^ self.sched.case_id.rotate_left(17)
                                ^ ((item.op as u64) << 20)
                                ^ (c as u64 + 1),
                        );
                        let dst = self.pick_parcel_dst(r, seed);
                        self.outbox[r].push_back(Parcel { tree, ttl, fanout, seed, dst });
                    }
                }
                if item.role == Role::RdvRecv && self.sched.reg_churn {
                    if let Op::Rendezvous { len, .. } = self.sched.ops[item.op] {
                        match self.cluster.rank(r).register_buffer(len.max(8)) {
                            Ok(b) => self.ops[item.op].churn_buf = Some(b),
                            Err(e) => self
                                .violations
                                .push(format!("rank {r}: churn registration failed: {e}")),
                        }
                    }
                }
            }
            self.active[r].push(item);
            self.next[r] += 1;
            self.progressed = true;
            if is_barrier {
                return;
            }
        }
    }

    fn advance_active(&mut self, r: usize) {
        let items: Vec<QItem> = self.active[r].clone();
        let mut finished: Vec<QItem> = Vec::new();
        for item in items {
            if self.advance_item(r, item) {
                finished.push(item);
            }
        }
        if !finished.is_empty() {
            self.progressed = true;
            self.active[r].retain(|it| !finished.contains(it));
        }
    }

    /// Drive one item one step; true when its role at rank `r` is complete.
    fn advance_item(&mut self, r: usize, item: QItem) -> bool {
        let i = item.op;
        match self.sched.ops[i] {
            Op::Send { dst, len, .. } => {
                if !self.ops[i].posted {
                    let payload: Vec<u8> = (0..len).map(|k| self.sched.fill_byte(i, k)).collect();
                    match self.cluster.rank(r).try_send(dst, &payload, self.ops[i].remote_rid) {
                        Ok(true) => {
                            self.ops[i].posted = true;
                            self.tally[r].sends += 1;
                            self.progressed = true;
                        }
                        Ok(false) => {}
                        Err(e) => self.op_error(i, r, "send post failed", e),
                    }
                }
                self.ops[i].done()
            }
            Op::PutEager { dst, len, .. } | Op::PutDirect { dst, len, .. } => {
                if !self.ops[i].posted {
                    let (txr, txo) = self.ops[i].tx;
                    let (rxr, rxo) = self.ops[i].rx;
                    let dd = self.rx_arena[rxr].descriptor_at(rxo, len).expect("rx slice");
                    debug_assert_eq!(txr, r);
                    debug_assert_eq!(rxr, dst);
                    match self.cluster.rank(r).try_put_with_completion(
                        dst,
                        &self.tx_arena[txr],
                        txo,
                        len,
                        &dd,
                        0,
                        self.ops[i].local_rid,
                        self.ops[i].remote_rid,
                    ) {
                        Ok(true) => {
                            self.ops[i].posted = true;
                            if matches!(self.sched.ops[i], Op::PutEager { .. }) {
                                self.tally[r].puts_eager += 1;
                            } else {
                                self.tally[r].puts_direct += 1;
                            }
                            self.progressed = true;
                        }
                        Ok(false) => {}
                        Err(e) => self.op_error(i, r, "pwc post failed", e),
                    }
                }
                self.ops[i].done()
            }
            Op::PutMany { dst, len, count, .. } => {
                if !self.ops[i].posted {
                    let (txr, txo) = self.ops[i].tx;
                    let (rxr, rxo) = self.ops[i].rx;
                    let span = (len + 7) & !7;
                    let dd =
                        self.rx_arena[rxr].descriptor_at(rxo, count * span).expect("rx run slice");
                    debug_assert_eq!(txr, r);
                    debug_assert_eq!(rxr, dst);
                    let items: Vec<PutManyItem> = (self.ops[i].many_posted..count)
                        .map(|j| PutManyItem {
                            loff: txo + j * span,
                            len,
                            doff: j * span,
                            local_rid: many_local_rid(i, j),
                            remote_rid: many_remote_rid(i, j),
                        })
                        .collect();
                    match self.cluster.rank(r).try_put_many(dst, &self.tx_arena[txr], &dd, &items) {
                        Ok(0) => {}
                        Ok(n) => {
                            self.ops[i].many_posted += n;
                            self.tally[r].puts_eager += n as u64;
                            self.progressed = true;
                            if self.ops[i].many_posted == count {
                                self.ops[i].posted = true;
                            }
                        }
                        Err(e) => self.op_error(i, r, "put_many post failed", e),
                    }
                }
                self.ops[i].done()
            }
            Op::Get { dst, len, .. } => {
                if !self.ops[i].posted {
                    let (txr, txo) = self.ops[i].tx;
                    let (rxr, rxo) = self.ops[i].rx;
                    let sd = self.tx_arena[txr].descriptor_at(txo, len).expect("src slice");
                    debug_assert_eq!(rxr, r);
                    match self.cluster.rank(r).get_with_completion(
                        dst,
                        &self.rx_arena[rxr],
                        rxo,
                        len,
                        &sd,
                        0,
                        self.ops[i].local_rid,
                    ) {
                        Ok(()) => {
                            self.ops[i].posted = true;
                            self.tally[r].gets += 1;
                            self.progressed = true;
                        }
                        Err(e) => self.op_error(i, r, "get post failed", e),
                    }
                }
                self.ops[i].done()
            }
            Op::Rendezvous { src, dst, len, tag } => match item.role {
                Role::Init => self.advance_rdv_sender(r, i, dst, len, tag),
                Role::RdvRecv => self.advance_rdv_receiver(r, i, src, len, tag),
            },
            Op::Barrier => self.advance_barrier(r, i),
            Op::ParcelTree { .. } => {
                let t = self.tree_of_op[&i];
                let (delivered, expected) = (self.trees[t].delivered, self.trees[t].expected);
                if delivered > expected {
                    self.fail_op(
                        i,
                        r,
                        format!("parcel tree over-delivered: {delivered} > expected {expected}"),
                    );
                }
                delivered >= expected
            }
            Op::CrashNode { .. } | Op::Partition { .. } => {
                unreachable!("chaos ops configure the fault plan; they are never queued")
            }
            Op::RpcCall { .. } => unreachable!("rpc ops never enter the executor"),
        }
    }

    fn advance_rdv_sender(&mut self, r: usize, i: usize, dst: usize, len: usize, tag: u64) -> bool {
        let p = self.cluster.rank(r).clone();
        match self.ops[i].snd {
            SndState::WaitDesc => match p.try_wait_send_buffer(dst, tag) {
                Ok(Some(desc)) => {
                    if len > desc.len {
                        self.fail_op(
                            i,
                            r,
                            format!("rdv descriptor too small: {} < {len}", desc.len),
                        );
                        self.ops[i].snd = SndState::Done;
                        return true;
                    }
                    let (txr, txo) = self.ops[i].tx;
                    match p.put(dst, &self.tx_arena[txr], txo, len, &desc, 0, self.ops[i].local_rid)
                    {
                        Ok(()) => {
                            self.ops[i].snd = SndState::WaitPut;
                            // Plain puts share the middleware's puts_direct
                            // counter.
                            self.tally[r].puts_direct += 1;
                            self.progressed = true;
                        }
                        Err(e) => {
                            // Both outcomes of op_error are terminal: the
                            // chaos-resolution and fail_op paths each mark
                            // every leg done.
                            self.op_error(i, r, "rdv put failed", e);
                            return true;
                        }
                    }
                }
                Ok(None) => {
                    if self.rdv_peer_dead(i, r, dst, &p) {
                        return true;
                    }
                }
                Err(e) => {
                    self.op_error(i, r, "rdv wait_send_buffer failed", e);
                    return true;
                }
            },
            SndState::WaitPut => {
                // Completion arrives through the event router (local_done).
                if self.ops[i].local_done {
                    self.ops[i].snd = SndState::SendFin;
                    self.progressed = true;
                }
            }
            SndState::SendFin => match p.try_send_fin(dst, tag) {
                Ok(true) => {
                    self.ops[i].snd = SndState::Done;
                    self.progressed = true;
                }
                Ok(false) => {}
                Err(e) => {
                    self.op_error(i, r, "rdv fin failed", e);
                }
            },
            SndState::Done => {}
        }
        self.ops[i].snd == SndState::Done
    }

    fn advance_rdv_receiver(
        &mut self,
        r: usize,
        i: usize,
        src: usize,
        len: usize,
        tag: u64,
    ) -> bool {
        let p = self.cluster.rank(r).clone();
        match self.ops[i].rcv {
            RcvState::Announce => {
                let res = if let Some(b) = &self.ops[i].churn_buf {
                    p.try_post_recv_buffer(src, b, 0, len, tag)
                } else {
                    let (rxr, rxo) = self.ops[i].rx;
                    debug_assert_eq!(rxr, r);
                    p.try_post_recv_buffer(src, &self.rx_arena[rxr], rxo, len, tag)
                };
                match res {
                    Ok(true) => {
                        self.ops[i].rcv = RcvState::WaitFin;
                        self.progressed = true;
                    }
                    Ok(false) => {}
                    Err(e) => {
                        self.op_error(i, r, "rdv announce failed", e);
                    }
                }
            }
            RcvState::WaitFin => match p.try_wait_fin(src, tag) {
                Ok(Some(_ts)) => {
                    let got = if let Some(b) = &self.ops[i].churn_buf {
                        b.to_vec(0, len)
                    } else {
                        let (rxr, rxo) = self.ops[i].rx;
                        self.rx_arena[rxr].to_vec(rxo, len)
                    };
                    self.verify_payload(i, r, &got, "rendezvous payload");
                    if let Some(b) = self.ops[i].churn_buf.take() {
                        if let Err(e) = p.release_buffer(&b) {
                            self.violations.push(format!("rank {r}: churn release failed: {e}"));
                        }
                    }
                    self.ops[i].rcv = RcvState::Done;
                    self.progressed = true;
                }
                Ok(None) => {
                    if self.rdv_peer_dead(i, r, src, &p) {
                        return true;
                    }
                }
                Err(e) => {
                    self.op_error(i, r, "rdv wait_fin failed", e);
                }
            },
            RcvState::Done => {}
        }
        self.ops[i].rcv == RcvState::Done
    }

    fn advance_barrier(&mut self, r: usize, op_idx: usize) -> bool {
        let b = self.bar_of_op[&op_idx];
        let n = self.sched.nodes;
        let rounds = self.barriers[b].rounds;
        let mut st = self.barriers[b].per_rank[r].clone();
        if st.done {
            return true;
        }
        if st.round >= rounds {
            st.done = true;
        } else {
            if !st.send_posted {
                let partner = (r + (1 << st.round)) % n;
                let rid = RID_BARRIER | ((b as u64) << 16) | ((st.round as u64) << 8) | r as u64;
                match self.cluster.rank(r).try_send(partner, b"bar", rid) {
                    Ok(true) => {
                        st.send_posted = true;
                        self.tally[r].sends += 1;
                        self.progressed = true;
                    }
                    Ok(false) => {}
                    Err(e) => self
                        .violations
                        .push(format!("rank {r}: barrier {b} round {} send failed: {e}", st.round)),
                }
            }
            if st.send_posted && st.recv_mask & (1 << st.round) != 0 {
                st.round += 1;
                st.send_posted = false;
                self.progressed = true;
                if st.round >= rounds {
                    st.done = true;
                }
            }
        }
        let done = st.done;
        self.barriers[b].per_rank[r] = st;
        if done {
            self.in_barrier[r] = None;
        }
        done
    }

    fn drain_outbox(&mut self, r: usize) {
        for _ in 0..4 {
            let Some(parcel) = self.outbox[r].front().copied() else { break };
            let payload = parcel_payload(&parcel);
            let rid = RID_PARCEL + self.parcel_seq;
            match self.cluster.rank(r).try_send(parcel.dst, &payload, rid) {
                Ok(true) => {
                    self.outbox[r].pop_front();
                    self.parcel_seq += 1;
                    self.tally[r].sends += 1;
                    self.progressed = true;
                }
                Ok(false) => break,
                Err(e) => {
                    self.violations.push(format!("rank {r}: parcel send failed: {e}"));
                    self.outbox[r].pop_front();
                }
            }
        }
    }

    fn pick_parcel_dst(&self, me: usize, seed: u64) -> usize {
        let n = self.sched.nodes;
        let mut d = (splitmix64(seed ^ 0xD5) % (n as u64 - 1)) as usize;
        if d >= me {
            d += 1;
        }
        d
    }

    // ------------------------------------------------------------- routing

    fn pump(&mut self, r: usize, max: usize) {
        // Batch drain through the same poll_completions API the runtime
        // progress thread uses, so chaos schedules exercise the batch path;
        // each event still routes through the invariant checkers
        // individually.
        let p = self.cluster.rank(r).clone();
        let mut events: Vec<Completion> = Vec::with_capacity(max.min(64));
        match p.poll_completions(ProbeFlags::Any, &mut events, max) {
            Ok(0) => {}
            Ok(_) => {
                self.progressed = true;
                for ev in events {
                    self.route(r, ev);
                }
            }
            Err(e) => {
                if self.has_chaos() && is_death_error(&e) {
                    // Progress discovering a dead peer inline (e.g. a
                    // failed credit-return write) — detection, not a bug.
                } else {
                    self.violations.push(format!("rank {r}: probe failed: {e}"));
                }
            }
        }
    }

    fn route(&mut self, r: usize, ev: Completion) {
        match ev.class {
            CompletionClass::Local => {
                let Completion { rid, status, .. } = ev;
                self.tally[r].local_events += 1;
                if !status.is_ok() {
                    // An error completion: a work request flushed by the
                    // health machine's eviction (or errored mid-transfer).
                    // Legitimate exactly when the chaos plan explains it —
                    // and it *resolves* the rid, which is the whole
                    // contract: error completion, never a silent hang.
                    let mapped =
                        self.local_map.get(&rid).or_else(|| self.remote_map.get(&rid)).copied();
                    match mapped {
                        Some(i) if self.death_may_explain(i) => self.resolve_op_err(i),
                        Some(i) => self.violations.push(format!(
                            "rank {r}: unexpected error completion for op {i} rid {rid:#x}: {status}"
                        )),
                        None => self.violations.push(format!(
                            "rank {r}: error completion for unknown rid {rid:#x}: {status}"
                        )),
                    }
                    return;
                }
                let Some(&i) = self.local_map.get(&rid) else {
                    self.violations.push(format!("rank {r}: unknown local rid {rid:#x}"));
                    return;
                };
                if self.ops[i].failed {
                    // Straggler from a leg that ran before the op resolved
                    // in error (e.g. an already-posted batch item).
                    return;
                }
                if matches!(self.sched.ops[i], Op::PutMany { .. }) {
                    let bit = 1u32 << ((rid & 0xFF) >> 1);
                    if self.ops[i].many_local & bit != 0 {
                        self.violations.push(format!(
                            "rank {r}: duplicate local completion for batched op {i} rid {rid:#x}"
                        ));
                        return;
                    }
                    self.ops[i].many_local |= bit;
                    return;
                }
                if self.ops[i].local_done {
                    self.violations.push(format!(
                        "rank {r}: duplicate local completion for op {i} rid {rid:#x}"
                    ));
                    return;
                }
                self.ops[i].local_done = true;
                if let Op::Get { len, .. } = self.sched.ops[i] {
                    let (rxr, rxo) = self.ops[i].rx;
                    let got = self.rx_arena[rxr].to_vec(rxo, len);
                    self.verify_payload(i, r, &got, "get payload");
                }
            }
            CompletionClass::Remote => {
                let rev = ev;
                self.tally[r].remote_events += 1;
                let rid = rev.rid;
                if !rev.status.is_ok() {
                    match self.remote_map.get(&rid).copied() {
                        Some(i) if self.death_may_explain(i) => self.resolve_op_err(i),
                        Some(i) => self.violations.push(format!(
                            "rank {r}: unexpected remote error completion for op {i} rid {rid:#x}: {}",
                            rev.status
                        )),
                        None => self.violations.push(format!(
                            "rank {r}: remote error completion for unknown rid {rid:#x}: {}",
                            rev.status
                        )),
                    }
                    return;
                }
                if rid & RID_PARCEL != 0 && rid & RID_BARRIER == 0 {
                    self.route_parcel(r, &rev);
                } else if rid & RID_BARRIER != 0 {
                    self.route_barrier(r, rid, rev.peer);
                } else if let Some(&i) = self.remote_map.get(&rid) {
                    if self.ops[i].failed {
                        return; // straggler from a pre-failure leg
                    }
                    if let Op::PutMany { len, .. } = self.sched.ops[i] {
                        self.route_many_remote(r, i, rid, len);
                        return;
                    }
                    if self.ops[i].remote_done {
                        self.violations.push(format!(
                            "rank {r}: duplicate remote completion for op {i} rid {rid:#x}"
                        ));
                        return;
                    }
                    self.ops[i].remote_done = true;
                    match self.sched.ops[i] {
                        Op::Send { len, .. } => {
                            let Some(payload) = rev.payload.as_deref() else {
                                self.fail_op(i, r, "send delivered without payload".into());
                                return;
                            };
                            if payload.len() != len || fnv1a(payload) != self.ops[i].expected_sum {
                                self.fail_op(
                                    i,
                                    r,
                                    format!(
                                        "send payload corrupt: len {} sum {:#x} != expected len {len} sum {:#x}",
                                        payload.len(),
                                        fnv1a(payload),
                                        self.ops[i].expected_sum
                                    ),
                                );
                            }
                        }
                        Op::PutEager { len, .. } | Op::PutDirect { len, .. } => {
                            let (rxr, rxo) = self.ops[i].rx;
                            debug_assert_eq!(rxr, r);
                            let got = self.rx_arena[rxr].to_vec(rxo, len);
                            self.verify_payload(i, r, &got, "put payload");
                        }
                        _ => {}
                    }
                } else {
                    self.violations.push(format!("rank {r}: unknown remote rid {rid:#x}"));
                }
            }
        }
    }

    /// One item of a batched put completed at the target: mark its bit and
    /// verify the landed bytes independently of its batch-mates.
    fn route_many_remote(&mut self, r: usize, i: usize, rid: u64, len: usize) {
        let j = ((rid & 0xFF) >> 1) as usize;
        let bit = 1u32 << j;
        if self.ops[i].many_remote & bit != 0 {
            self.violations.push(format!(
                "rank {r}: duplicate remote completion for batched op {i} rid {rid:#x}"
            ));
            return;
        }
        self.ops[i].many_remote |= bit;
        let span = (len + 7) & !7;
        let (rxr, rxo) = self.ops[i].rx;
        debug_assert_eq!(rxr, r);
        let got = self.rx_arena[rxr].to_vec(rxo + j * span, len);
        let want: Vec<u8> = (0..len).map(|k| self.sched.fill_byte(i, j * len + k)).collect();
        if fnv1a(&got) != fnv1a(&want) {
            self.fail_op(i, r, format!("put_many item {j} payload corrupt"));
        }
    }

    fn route_barrier(&mut self, r: usize, rid: u64, src: usize) {
        let b = ((rid >> 16) & 0xFFF) as usize;
        let round = ((rid >> 8) & 0xFF) as u8;
        let claimed_src = (rid & 0xFF) as usize;
        if b >= self.barriers.len() {
            self.violations.push(format!("rank {r}: barrier rid {rid:#x} out of range"));
            return;
        }
        let n = self.sched.nodes;
        let expected_src = (r + n - ((1usize << round) % n)) % n;
        if src != expected_src || claimed_src != src {
            self.violations.push(format!(
                "rank {r}: barrier {b} round {round} arrival from {src} (claimed {claimed_src}), expected {expected_src}"
            ));
            return;
        }
        let st = &mut self.barriers[b].per_rank[r];
        if st.recv_mask & (1 << round) != 0 {
            self.violations
                .push(format!("rank {r}: duplicate barrier arrival b={b} round={round}"));
            return;
        }
        st.recv_mask |= 1 << round;
    }

    fn route_parcel(&mut self, r: usize, rev: &Completion) {
        let Some(payload) = rev.payload.as_deref() else {
            self.violations.push(format!("rank {r}: parcel without payload"));
            return;
        };
        if payload.len() != PARCEL_LEN {
            self.violations.push(format!("rank {r}: parcel truncated to {} bytes", payload.len()));
            return;
        }
        let tree = u16::from_le_bytes([payload[0], payload[1]]);
        let ttl = payload[2];
        let fanout = payload[3];
        let seed = u64::from_le_bytes(payload[4..12].try_into().expect("seed bytes"));
        let check = parcel_payload(&Parcel { tree, ttl, fanout, seed, dst: r });
        if payload != check {
            self.violations.push(format!("rank {r}: parcel filler corrupt (tree {tree})"));
            return;
        }
        let Some(t) = self.trees.get_mut(tree as usize) else {
            self.violations.push(format!("rank {r}: parcel for unknown tree {tree}"));
            return;
        };
        t.delivered += 1;
        if ttl > 0 {
            for c in 0..fanout {
                let child_seed = splitmix64(seed ^ (c as u64 + 1));
                let dst = self.pick_parcel_dst(r, child_seed);
                self.outbox[r].push_back(Parcel {
                    tree,
                    ttl: ttl - 1,
                    fanout,
                    seed: child_seed,
                    dst,
                });
            }
        }
    }

    // ----------------------------------------------------------- verdicts

    fn verify_payload(&mut self, i: usize, r: usize, got: &[u8], what: &str) {
        let want: Vec<u8> = (0..got.len()).map(|k| self.sched.fill_byte(i, k)).collect();
        if fnv1a(got) != fnv1a(&want) {
            self.fail_op(i, r, format!("{what} corrupt (op {i})"));
        }
    }

    /// True when the schedule's chaos plan can explain a death error on op
    /// `i`: an endpoint is scheduled to crash, or the pair is scheduled to
    /// partition. (Permissive, not required — an op that races ahead of
    /// the fault and completes normally is equally fine.)
    fn death_may_explain(&self, i: usize) -> bool {
        let (s, d) = match self.sched.ops[i] {
            Op::Send { src, dst, .. }
            | Op::PutEager { src, dst, .. }
            | Op::PutMany { src, dst, .. }
            | Op::PutDirect { src, dst, .. }
            | Op::Get { src, dst, .. }
            | Op::Rendezvous { src, dst, .. } => (src, dst),
            // Collectives touch every rank: any scheduled crash reaches them.
            Op::Barrier | Op::ParcelTree { .. } => return self.crashed.iter().any(Option::is_some),
            Op::CrashNode { .. } | Op::Partition { .. } | Op::RpcCall { .. } => return false,
        };
        self.crashed[s].is_some()
            || self.crashed[d].is_some()
            || self.partitions.iter().any(|&(a, b, _, _)| (a, b) == (s, d) || (a, b) == (d, s))
    }

    /// Terminal state for a chaos-explained error: the op *resolved* (in
    /// error, not success) — the all-ops-resolve invariant is satisfied,
    /// and stragglers from legs that ran before the failure are tolerated.
    fn resolve_op_err(&mut self, i: usize) {
        if self.ops[i].failed {
            return;
        }
        self.ops[i].failed = true;
        self.ops[i].snd = SndState::Done;
        self.ops[i].rcv = RcvState::Done;
        self.resolved_err += 1;
        self.progressed = true;
    }

    /// Classify an op-level error: a death error explained by the chaos
    /// plan resolves the op; anything else is a genuine violation.
    fn op_error(&mut self, i: usize, r: usize, what: &str, e: PhotonError) {
        if is_death_error(&e) && self.death_may_explain(i) {
            self.resolve_op_err(i);
        } else {
            self.fail_op(i, r, format!("{what}: {e}"));
        }
    }

    /// The rendezvous `try_wait_*` entry points carry no health gate (they
    /// only poll a map), so a wait on a dead counterpart would idle
    /// forever. Poll the peer's health explicitly: this drives the
    /// detector (probes, backoff, eviction) exactly like the blocking
    /// waits do, and resolves the op when the peer is gone. Returns true
    /// when the op resolved.
    fn rdv_peer_dead(&mut self, i: usize, r: usize, peer: usize, p: &Photon) -> bool {
        match p.check_peer(peer) {
            Ok(PeerHealthState::Dead) => {
                self.op_error(i, r, "rendezvous peer died", PhotonError::PeerDead(peer));
                true
            }
            Ok(_) => false,
            Err(e) => {
                self.op_error(i, r, "rendezvous health probe failed", e);
                true
            }
        }
    }

    fn fail_op(&mut self, i: usize, r: usize, msg: String) {
        self.violations.push(format!("rank {r} op {i} ({:?}): {msg}", self.sched.ops[i]));
        // Mark every leg complete so the run can terminate and report.
        self.ops[i].posted = true;
        self.ops[i].local_done = true;
        self.ops[i].remote_done = true;
        self.ops[i].many_local = u32::MAX;
        self.ops[i].many_remote = u32::MAX;
        self.ops[i].snd = SndState::Done;
        self.ops[i].rcv = RcvState::Done;
    }

    fn report_stuck(&mut self) {
        let mut diag = format!("stuck after {} sweeps:", self.sweeps);
        for (r, p) in self.cluster.ranks().iter().enumerate() {
            let (ql, qr) = p.queued_events();
            diag.push_str(&format!(
                " [rank {r}: next {}/{}, active {}, outbox {}, in_flight {}, queued {ql}/{qr}]",
                self.next[r],
                self.queues[r].len(),
                self.active[r].len(),
                self.outbox[r].len(),
                p.in_flight(),
            ));
        }
        self.violations.push(diag);
        // A lost credit return is the classic protocol livelock; run the
        // credit checkers in diagnostic mode so the verdict names the bug.
        let mut v = Violations::default();
        checkers::check_credit_conservation(&self.cluster, &mut v);
        for item in v.into_items() {
            self.violations.push(format!("diagnostic: {item}"));
        }
    }

    fn finish(mut self) -> CaseReport {
        let stuck = !self.violations.is_empty()
            && self.violations.items().iter().any(|v| v.starts_with("stuck"));
        // All-ops-resolve runs unconditionally — on a stuck case it names
        // exactly which ops hung without a completion or an error.
        let resolve_states: Vec<(String, bool)> = self
            .sched
            .ops
            .iter()
            .enumerate()
            .map(|(i, op)| {
                let resolved = match *op {
                    // Chaos ops are configuration, resolved by definition.
                    Op::CrashNode { .. } | Op::Partition { .. } => true,
                    Op::Barrier => {
                        self.barriers[self.bar_of_op[&i]].per_rank.iter().all(|st| st.done)
                    }
                    Op::ParcelTree { .. } => {
                        let t = &self.trees[self.tree_of_op[&i]];
                        t.delivered >= t.expected
                    }
                    _ => self.ops[i].done(),
                };
                (format!("{op:?}"), resolved)
            })
            .collect();
        checkers::check_all_ops_resolve(&resolve_states, &mut self.violations);
        if !stuck {
            if self.has_chaos() {
                // Eviction deliberately reclaims flow-control credits and
                // flushes work requests, so credit conservation and the
                // stats/tally agreement cannot hold across a failure —
                // those stay at full strength on the crash-free
                // campaigns. Survivors are still held to full quiescence;
                // crashed ranks are exempt (their in-flight state is, by
                // construction, never drained).
                for (r, p) in self.cluster.ranks().iter().enumerate() {
                    if self.crashed[r].is_none() {
                        checkers::check_quiescent_rank(r, p, &mut self.violations);
                    }
                }
            } else {
                checkers::check_quiescent(&self.cluster, &mut self.violations);
                checkers::check_credit_conservation(&self.cluster, &mut self.violations);
                for (r, p) in self.cluster.ranks().iter().enumerate() {
                    checkers::check_stats(r, p, &self.tally[r], &mut self.violations);
                }
            }
        }
        let stats: Vec<StatsSnapshot> = self.cluster.ranks().iter().map(|p| p.stats()).collect();
        let trace_csv: Vec<String> =
            self.cluster.ranks().iter().map(|p| p.tracer().to_csv()).collect();
        let span_traces: Vec<_> = self.cluster.ranks().iter().map(|p| p.span_trace()).collect();
        let mut digest_src = String::new();
        for csv in &trace_csv {
            digest_src.push_str(csv);
        }
        for s in &stats {
            digest_src.push_str(&format!("{s:?}"));
        }
        for v in self.violations.items() {
            digest_src.push_str(v);
        }
        CaseReport {
            seed: self.sched.seed,
            case_id: self.sched.case_id,
            violations: self.violations.into_items(),
            digest: fnv1a(digest_src.as_bytes()),
            sweeps: self.sweeps,
            resolved_err: self.resolved_err,
            stats,
            trace_csv,
            span_json: photon_core::obs::chrome_trace_json(&span_traces),
        }
    }
}

fn install_faults(cluster: &PhotonCluster, sched: &Schedule) {
    let faults = cluster.fabric().switch().faults();
    faults.set_jitter_seed(sched.seed ^ sched.case_id);
    for f in &sched.faults {
        match *f {
            FaultSpec::DegradeLink { src, dst, extra_ns, from_ns, until_ns } => {
                faults.degrade_link_during(
                    src,
                    dst,
                    extra_ns,
                    Window::new(VTime(from_ns), VTime(until_ns)),
                );
            }
            FaultSpec::StraggleNode { node, extra_ns, from_ns, until_ns } => {
                faults.straggle_node_during(
                    node,
                    extra_ns,
                    Window::new(VTime(from_ns), VTime(until_ns)),
                );
            }
            FaultSpec::Jitter { bound_ns, seed, from_ns, until_ns } => {
                faults.set_jitter_seed(seed);
                faults.set_jitter_during(bound_ns, Window::new(VTime(from_ns), VTime(until_ns)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SimParams;

    fn fixed_schedule() -> Schedule {
        Schedule {
            seed: 0x51,
            case_id: 0,
            nodes: 4,
            cfg: PhotonConfig {
                eager_threshold: 1024,
                eager_ring_bytes: 8 * 1024,
                ledger_entries: 32,
                credit_interval: 8,
                ..PhotonConfig::default()
            },
            cq_depth: 256,
            model: 0,
            window: 2,
            reg_churn: false,
            ops: vec![
                Op::Send { src: 0, dst: 1, len: 64 },
                Op::PutEager { src: 1, dst: 2, len: 128 },
                Op::PutMany { src: 1, dst: 2, len: 48, count: 5 },
                Op::PutDirect { src: 2, dst: 3, len: 4096 },
                Op::Get { src: 3, dst: 0, len: 512 },
                Op::Barrier,
                Op::Rendezvous { src: 0, dst: 2, len: 2048, tag: 1 },
                Op::ParcelTree { root: 1, fanout: 2, ttl: 2 },
            ],
            faults: vec![],
            rpc_server: None,
        }
    }

    #[test]
    fn mixed_schedule_runs_clean() {
        let rep = run_schedule(&fixed_schedule());
        assert!(rep.passed(), "violations: {:?}", rep.violations);
        assert!(rep.sweeps > 0);
        // All four ranks traced something.
        assert!(rep.trace_csv.iter().all(|c| c.lines().count() > 1));
    }

    #[test]
    fn schedules_exercise_the_batch_probe_path() {
        // The executor's pump drains through poll_completions, the same
        // batch API the runtime progress thread uses — so every chaos
        // schedule doubles as coverage for the batch path. Pin that wiring:
        // a clean mixed schedule must leave batch-probe counts on all ranks.
        let sched = fixed_schedule();
        let ex = Executor::new(&sched, sched.cfg);
        let ranks: Vec<_> = ex.cluster.ranks().to_vec();
        let rep = ex.run();
        assert!(rep.passed(), "violations: {:?}", rep.violations);
        for (r, p) in ranks.iter().enumerate() {
            let s = p.stats();
            assert!(s.probe_batches > 0, "rank {r} never used the batch probe path");
            assert!(s.probes >= s.probe_batches, "probes include batch calls");
        }
    }

    #[test]
    fn batched_puts_interleave_with_singles_under_pressure() {
        // Batched runs racing single puts and a degraded link, over the
        // tiny backpressure config so partial posts (halved runs, credit
        // stalls) actually occur — every item must still land intact.
        let mut sched = fixed_schedule();
        sched.cfg = PhotonConfig::tiny();
        let eager = sched.cfg.eager_threshold.min(sched.cfg.max_eager_payload());
        sched.ops = vec![
            Op::PutMany { src: 0, dst: 1, len: eager.min(16), count: 8 },
            Op::PutEager { src: 0, dst: 1, len: eager.min(16) },
            Op::PutMany { src: 1, dst: 0, len: eager.min(24), count: 6 },
            Op::PutEager { src: 1, dst: 0, len: eager.min(8) },
            Op::PutMany { src: 0, dst: 1, len: eager.min(8), count: 4 },
        ];
        sched.faults = vec![FaultSpec::DegradeLink {
            src: 0,
            dst: 1,
            extra_ns: 5_000,
            from_ns: 0,
            until_ns: 1_000_000,
        }];
        let rep = run_schedule(&sched);
        assert!(rep.passed(), "violations: {:?}", rep.violations);
        // The middleware saw batched posts from both sides.
        assert!(rep.stats.iter().take(2).all(|s| s.batch_posts > 0));
    }

    #[test]
    fn execution_is_deterministic() {
        let a = run_schedule(&fixed_schedule());
        let b = run_schedule(&fixed_schedule());
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.trace_csv, b.trace_csv);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn generated_cases_run_clean_and_deterministic() {
        let p = SimParams::smoke();
        for case in 0..6 {
            let s = Schedule::generate(0xABCD, case, &p);
            let a = run_schedule(&s);
            assert!(a.passed(), "case {case}: {:?}\n{s}", a.violations);
            let b = run_schedule(&s);
            assert_eq!(a.digest, b.digest, "case {case} nondeterministic");
        }
    }

    #[test]
    fn faulty_network_does_not_break_invariants() {
        let mut s = fixed_schedule();
        s.faults = vec![
            FaultSpec::DegradeLink {
                src: 0,
                dst: 1,
                extra_ns: 20_000,
                from_ns: 0,
                until_ns: 1 << 40,
            },
            FaultSpec::StraggleNode { node: 2, extra_ns: 5_000, from_ns: 1_000, until_ns: 1 << 40 },
            FaultSpec::Jitter { bound_ns: 800, seed: 7, from_ns: 0, until_ns: 1 << 40 },
        ];
        let rep = run_schedule(&s);
        assert!(rep.passed(), "violations: {:?}", rep.violations);
    }

    #[test]
    fn mutation_skipped_credit_returns_are_caught() {
        // Seeded bug: every credit-return write is dropped. The consumer's
        // ledger truth then outruns the producer's credit word by at least
        // one full interval, which the conservation checker must flag.
        let s = Schedule {
            seed: 0x99,
            case_id: 0,
            nodes: 2,
            cfg: PhotonConfig::tiny(),
            cq_depth: 256,
            model: 0,
            window: 1,
            reg_churn: false,
            ops: (0..6)
                .map(|_| Op::PutDirect { src: 0, dst: 1, len: 128 })
                .chain((0..2).map(|_| Op::Send { src: 0, dst: 1, len: 16 }))
                .collect(),
            faults: vec![],
            rpc_server: None,
        };
        let clean = run_schedule(&s);
        assert!(clean.passed(), "baseline must pass: {:?}", clean.violations);
        let mutated = run_schedule_cfg(&s, |cfg| cfg.skip_credit_return_interval = 1);
        assert!(
            mutated.violations.iter().any(|v| v.contains("credit-return lost")),
            "checkers must catch the seeded credit bug; got {:?}",
            mutated.violations
        );
    }

    #[test]
    fn barrier_only_schedule_completes() {
        let mut s = fixed_schedule();
        s.ops = vec![Op::Barrier, Op::Barrier, Op::Barrier];
        let rep = run_schedule(&s);
        assert!(rep.passed(), "violations: {:?}", rep.violations);
    }

    /// Crash-acceptance fixture: traffic into a node that dies at t=0, plus
    /// survivor traffic that must stay untouched.
    fn kill_schedule() -> Schedule {
        let mut s = fixed_schedule();
        s.ops = vec![
            Op::PutEager { src: 0, dst: 3, len: 128 },
            Op::Send { src: 1, dst: 3, len: 64 },
            Op::PutDirect { src: 2, dst: 3, len: 4096 },
            // Survivor traffic among ranks 0..3 only.
            Op::Send { src: 0, dst: 1, len: 64 },
            Op::PutEager { src: 1, dst: 2, len: 256 },
            Op::Get { src: 2, dst: 0, len: 512 },
            Op::CrashNode { node: 3, at_ns: 0 },
        ];
        s
    }

    #[test]
    fn kill_mid_put_resolves_pending_ops_as_errors() {
        // Every op aimed at the dead rank must terminate as an expected
        // error resolution — no hang, no violation — while survivor ops
        // complete exactly once (rep.passed() covers integrity + dedup).
        let rep = run_schedule(&kill_schedule());
        assert!(rep.passed(), "violations: {:?}", rep.violations);
        assert!(
            rep.resolved_err >= 3,
            "three ops target the dead rank; got {} error resolutions",
            rep.resolved_err
        );
    }

    #[test]
    fn crash_execution_is_deterministic() {
        let a = run_schedule(&kill_schedule());
        let b = run_schedule(&kill_schedule());
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.resolved_err, b.resolved_err);
    }

    #[test]
    fn partition_healing_inside_window_recovers_via_backoff() {
        // Link 0<->2 is cut for 150us of virtual time while a rendezvous and
        // an eager put cross it. The health machine goes Suspect, backs off
        // (20us base, doubling), and the probe that lands after the window
        // heals the peer — every op must finish *successfully*.
        let mut s = fixed_schedule();
        s.ops = vec![
            Op::Rendezvous { src: 0, dst: 2, len: 2048, tag: 1 },
            Op::PutEager { src: 2, dst: 0, len: 128 },
            Op::Send { src: 1, dst: 3, len: 64 },
            Op::Partition { a: 0, b: 2, from_ns: 0, until_ns: 150_000 },
        ];
        let rep = run_schedule(&s);
        assert!(rep.passed(), "violations: {:?}", rep.violations);
        assert_eq!(
            rep.resolved_err, 0,
            "a partition healing inside the backoff budget must not kill any op"
        );
    }

    #[test]
    fn permanent_partition_escalates_to_peer_death() {
        // The window never closes: after `suspect_death_probes` failed
        // reconnection probes both sides declare the peer Dead and pending
        // ops resolve as errors instead of hanging.
        let mut s = fixed_schedule();
        s.ops = vec![
            Op::Rendezvous { src: 0, dst: 2, len: 2048, tag: 1 },
            Op::PutEager { src: 0, dst: 2, len: 128 },
            Op::Send { src: 1, dst: 3, len: 64 },
            Op::Partition { a: 0, b: 2, from_ns: 0, until_ns: 1 << 40 },
        ];
        let rep = run_schedule(&s);
        assert!(rep.passed(), "violations: {:?}", rep.violations);
        assert!(
            rep.resolved_err >= 2,
            "ops across the dead link must resolve as errors; got {}",
            rep.resolved_err
        );
    }

    #[test]
    fn progress_threads_uphold_invariants_on_smoke_schedules() {
        // Same generated smoke cases as above, but with the dedicated
        // progress engine harvesting CQEs from two background threads. The
        // executor's sweep becomes a pure consumer of the sharded queues;
        // every integrity/quiescence/credit checker must still pass. Digests
        // are deliberately NOT compared — fan-out timing is now real-thread
        // timing.
        let p = SimParams::smoke();
        for case in 0..4 {
            let s = Schedule::generate(0xABCD, case, &p);
            let rep = run_schedule_cfg(&s, |cfg| cfg.progress_threads = 2);
            assert!(rep.passed(), "threaded case {case}: {:?}\n{s}", rep.violations);
        }
    }

    #[test]
    fn progress_threads_uphold_invariants_under_crash_chaos() {
        // Kill/partition chaos with background harvest threads racing the
        // sweep: all-ops-resolve and the error-completion contract must hold
        // exactly as in inline mode.
        let p = SimParams::crash();
        for case in 0..4 {
            let s = Schedule::generate(0xC1C5, case, &p);
            let rep = run_schedule_cfg(&s, |cfg| cfg.progress_threads = 2);
            assert!(rep.passed(), "threaded crash case {case}: {:?}\n{s}", rep.violations);
        }
        let rep = run_schedule_cfg(&kill_schedule(), |cfg| cfg.progress_threads = 2);
        assert!(rep.passed(), "violations: {:?}", rep.violations);
        assert!(rep.resolved_err >= 3, "got {} error resolutions", rep.resolved_err);
    }

    #[test]
    fn generated_crash_cases_run_clean_and_deterministic() {
        let p = SimParams::crash();
        let mut total_resolved = 0u64;
        for case in 0..8 {
            let s = Schedule::generate(0xC1C5, case, &p);
            let a = run_schedule(&s);
            assert!(a.passed(), "case {case}: {:?}\n{s}", a.violations);
            let b = run_schedule(&s);
            assert_eq!(a.digest, b.digest, "case {case} nondeterministic");
            total_resolved += a.resolved_err;
        }
        // The chaos must actually bite somewhere in the batch — otherwise
        // the campaign is testing nothing.
        assert!(total_resolved > 0, "no generated crash case produced an error resolution");
    }
}
