//! Best-effort schedule shrinker.
//!
//! When a schedule-based case fails, the shrinker tries to produce a much
//! smaller schedule that still fails, for human debugging. It is a greedy
//! delta-debugging loop under a hard re-run budget:
//!
//! 1. drop the whole fault plan, then individual faults — a failure that
//!    survives with no faults is a protocol bug, not a chaos artifact;
//! 2. remove chunks of ops (halving chunk sizes down to single ops),
//!    keeping any removal after which the case still fails.
//!
//! Every candidate is validated by actually re-running it, so the result is
//! always a genuinely failing schedule. "Best effort" means the loop stops
//! at the budget, not that it may return a passing schedule.

use crate::exec::run_schedule_cfg;
use crate::schedule::Schedule;
use photon_core::PhotonConfig;

/// A minimized failing schedule plus what it cost to find.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The smallest still-failing schedule found.
    pub schedule: Schedule,
    /// Violations the minimized schedule produces.
    pub violations: Vec<String>,
    /// Number of case re-runs the shrinker spent.
    pub runs_used: u32,
}

/// Shrink a failing schedule under plain (unmutated) configuration.
///
/// Returns `None` if the schedule does not actually fail (nothing to
/// shrink).
pub fn shrink_schedule(orig: &Schedule, budget: u32) -> Option<Shrunk> {
    shrink_schedule_cfg(orig, budget, |_| {})
}

/// Shrink a failing schedule, applying `mutate` to the [`PhotonConfig`] of
/// every re-run (used by mutation tests that inject bugs through config
/// hooks such as `skip_credit_return_interval`).
pub fn shrink_schedule_cfg(
    orig: &Schedule,
    budget: u32,
    mutate: impl Fn(&mut PhotonConfig) + Copy,
) -> Option<Shrunk> {
    let mut runs = 0u32;
    let try_fail = |s: &Schedule, runs: &mut u32| -> Option<Vec<String>> {
        *runs += 1;
        let rep = run_schedule_cfg(s, mutate);
        if rep.passed() {
            None
        } else {
            Some(rep.violations)
        }
    };

    let mut best = orig.clone();
    let mut best_viol = try_fail(&best, &mut runs)?;

    // Pass 1: faults. Wholesale removal first — the common case where the
    // bug reproduces without any chaos at all.
    if !best.faults.is_empty() && runs < budget {
        let mut cand = best.clone();
        cand.faults.clear();
        if let Some(v) = try_fail(&cand, &mut runs) {
            best = cand;
            best_viol = v;
        }
    }
    let mut i = 0;
    while i < best.faults.len() && runs < budget {
        let mut cand = best.clone();
        cand.faults.remove(i);
        if let Some(v) = try_fail(&cand, &mut runs) {
            best = cand;
            best_viol = v;
        } else {
            i += 1;
        }
    }

    // Pass 2: ops, classic ddmin chunking. Never shrink below one op — an
    // empty schedule is vacuous.
    let mut chunk = (best.ops.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < best.ops.len() && best.ops.len() > 1 && runs < budget {
            let hi = (i + chunk).min(best.ops.len());
            let mut cand = best.clone();
            cand.ops.drain(i..hi);
            if !cand.ops.is_empty() {
                if let Some(v) = try_fail(&cand, &mut runs) {
                    best = cand;
                    best_viol = v;
                    continue; // retry same index against the shorter list
                }
            }
            i = hi;
        }
        if chunk == 1 || runs >= budget {
            break;
        }
        chunk /= 2;
    }

    Some(Shrunk { schedule: best, violations: best_viol, runs_used: runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Op, Schedule, SimParams};

    /// A schedule whose credit-return mutation failure needs only a few of
    /// its ops; the rest is removable noise.
    fn noisy_mutation_schedule() -> Schedule {
        let mut s = Schedule::generate(0x51C2, 0, &SimParams::credits());
        s.nodes = 2;
        s.faults.clear();
        s.ops = vec![
            Op::Send { src: 0, dst: 1, len: 16 },
            Op::PutDirect { src: 0, dst: 1, len: 200 },
            Op::PutDirect { src: 0, dst: 1, len: 200 },
            Op::Send { src: 1, dst: 0, len: 16 },
            Op::PutDirect { src: 0, dst: 1, len: 200 },
            Op::PutDirect { src: 0, dst: 1, len: 200 },
            Op::PutDirect { src: 0, dst: 1, len: 200 },
            Op::PutDirect { src: 0, dst: 1, len: 200 },
            Op::Send { src: 1, dst: 0, len: 16 },
        ];
        s
    }

    #[test]
    fn passing_schedule_does_not_shrink() {
        let s = Schedule::generate(7, 0, &SimParams::smoke());
        assert!(shrink_schedule(&s, 16).is_none());
    }

    #[test]
    fn mutated_failure_shrinks_to_fewer_ops() {
        let s = noisy_mutation_schedule();
        let shrunk = shrink_schedule_cfg(&s, 200, |c| c.skip_credit_return_interval = 1)
            .expect("mutated schedule must fail");
        assert!(
            shrunk.schedule.ops.len() < s.ops.len(),
            "expected fewer than {} ops, got {}",
            s.ops.len(),
            shrunk.schedule.ops.len()
        );
        assert!(
            shrunk.violations.iter().any(|v| v.contains("credit-return lost")),
            "shrunk case must fail the same invariant: {:?}",
            shrunk.violations
        );
    }
}
