//! Protocol invariant checkers.
//!
//! Pure observers: they read the middleware's public introspection hooks
//! ([`Photon::credit_state`], [`Photon::in_flight`], [`Photon::stats`], …)
//! and harness-side tallies, and report violations as strings. They never
//! mutate protocol state, so running them cannot mask a bug.

use photon_core::{Photon, PhotonCluster, StatsSnapshot};

/// Accumulated invariant violations for one case.
#[derive(Debug, Default, Clone)]
pub struct Violations {
    items: Vec<String>,
}

impl Violations {
    /// Record a violation.
    pub fn push(&mut self, v: String) {
        self.items.push(v);
    }

    /// True when no invariant fired.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of violations recorded.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// The violation messages, in discovery order.
    pub fn items(&self) -> &[String] {
        &self.items
    }

    /// Move the messages out.
    pub fn into_items(self) -> Vec<String> {
        self.items
    }
}

/// Harness-side tallies of what was actually issued/observed, compared
/// against the middleware's [`StatsSnapshot`] at quiescence.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RankTally {
    /// Successful `try_send` posts (incl. barrier and parcel traffic).
    pub sends: u64,
    /// Successful eager-path PWC posts.
    pub puts_eager: u64,
    /// Successful direct-path PWC posts.
    pub puts_direct: u64,
    /// Gets posted.
    pub gets: u64,
    /// Plain puts posted (rendezvous data movement).
    pub puts_plain: u64,
    /// Local completion events surfaced to the harness.
    pub local_events: u64,
    /// Remote completion events surfaced to the harness.
    pub remote_events: u64,
}

/// Credit conservation between every ordered rank pair at quiescence.
///
/// The fabric applies RDMA effects synchronously at post time, so by the
/// time the stepper reaches quiescence every in-flight effect — including
/// credit-return writes — has already landed. Three invariants per pair
/// `(a → b)`:
///
/// 1. **Ledger conservation**: entries `a` produced toward `b` equal entries
///    `b` consumed from `a` (nothing lost, nothing duplicated).
/// 2. **Ring conservation**: byte cursors agree the same way.
/// 3. **Credit-return freshness**: the consumer returns credits after at
///    most `credit_interval` entries (ring: `ring_bytes/4` bytes), so the
///    producer-side credit word may lag consumer truth by strictly less
///    than one interval. A lag of a full interval or more means a
///    credit-return write was lost — precisely what the seeded
///    `skip_credit_return_interval` mutation produces.
pub fn check_credit_conservation(cluster: &PhotonCluster, out: &mut Violations) {
    let n = cluster.len();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let pa = cluster.rank(a);
            let pb = cluster.rank(b);
            let (Ok(ab), Ok(ba)) = (pa.credit_state(b), pb.credit_state(a)) else {
                out.push(format!("credit_state({a},{b}) unavailable"));
                continue;
            };
            if ab.tx_ledger_produced != ba.rx_ledger_consumed {
                out.push(format!(
                    "ledger conservation {a}->{b}: produced {} != consumed {}",
                    ab.tx_ledger_produced, ba.rx_ledger_consumed
                ));
            }
            if ab.tx_ring_cursor != ba.rx_ring_cursor {
                out.push(format!(
                    "ring conservation {a}->{b}: tx cursor {} != rx cursor {}",
                    ab.tx_ring_cursor, ba.rx_ring_cursor
                ));
            }
            let ledger_interval = pa.config().credit_interval_entries();
            let ledger_lag = ba.rx_ledger_consumed.saturating_sub(ab.credit_word_ledger);
            if ledger_lag >= ledger_interval {
                out.push(format!(
                    "credit-return lost {a}->{b} (ledger): consumed {} but credit word {} \
                     (lag {ledger_lag} >= interval {ledger_interval})",
                    ba.rx_ledger_consumed, ab.credit_word_ledger
                ));
            }
            let ring_interval = (pa.config().eager_ring_bytes / 4) as u64;
            let ring_lag = ba.rx_ring_cursor.saturating_sub(ab.credit_word_ring);
            if ring_lag >= ring_interval {
                out.push(format!(
                    "credit-return lost {a}->{b} (ring): consumed {} but credit word {} \
                     (lag {ring_lag} >= interval {ring_interval})",
                    ba.rx_ring_cursor, ab.credit_word_ring
                ));
            }
        }
    }
}

/// Quiescence ⇒ zero in-flight work: no pending fabric work requests, no
/// undelivered completion events, no orphaned rendezvous control state.
pub fn check_quiescent(cluster: &PhotonCluster, out: &mut Violations) {
    for (r, p) in cluster.ranks().iter().enumerate() {
        check_quiescent_rank(r, p, out);
    }
}

/// Per-rank quiescence check. Crash campaigns use this directly so they can
/// exempt crashed ranks (whose in-flight state is, by construction, never
/// drained) while still holding survivors to the full invariant.
pub fn check_quiescent_rank(r: usize, p: &Photon, out: &mut Violations) {
    let inflight = p.in_flight();
    if inflight != 0 {
        out.push(format!("rank {r}: {inflight} work requests in flight at quiescence"));
    }
    let (ql, qr) = p.queued_events();
    if ql != 0 || qr != 0 {
        out.push(format!("rank {r}: {ql} local / {qr} remote events queued at quiescence"));
    }
    let (ann, fins) = p.queued_rendezvous();
    if ann != 0 || fins != 0 {
        out.push(format!(
            "rank {r}: {ann} rendezvous announces / {fins} fins unclaimed at quiescence"
        ));
    }
}

/// **All-ops-resolve**: every initiated op must terminate — in success or
/// in an error completion — before quiescence. A `false` entry is an op
/// that neither completed nor resolved with an error: precisely the silent
/// hang the peer-failure path exists to rule out. `ops` pairs each op's
/// debug rendering with its resolution state.
pub fn check_all_ops_resolve(ops: &[(String, bool)], out: &mut Violations) {
    for (i, (desc, resolved)) in ops.iter().enumerate() {
        if !resolved {
            out.push(format!("op {i} ({desc}) never resolved: no completion, no error"));
        }
    }
}

/// Middleware counters must agree with what the harness actually issued and
/// observed.
pub fn check_stats(rank: usize, p: &Photon, tally: &RankTally, out: &mut Violations) {
    let s: StatsSnapshot = p.stats();
    let pairs: [(&str, u64, u64); 6] = [
        ("sends", s.sends, tally.sends),
        ("puts_eager", s.puts_eager, tally.puts_eager),
        ("puts_direct", s.puts_direct, tally.puts_direct),
        ("gets", s.gets, tally.gets),
        ("local_completions", s.local_completions, tally.local_events),
        ("remote_completions", s.remote_completions, tally.remote_events),
    ];
    for (name, got, want) in pairs {
        if got != want {
            out.push(format!("rank {rank}: stats.{name} = {got}, harness issued/observed {want}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_core::PhotonConfig;
    use photon_fabric::NetworkModel;

    #[test]
    fn clean_cluster_passes_all_checks() {
        let c = PhotonCluster::new(3, NetworkModel::ideal(), PhotonConfig::default());
        let mut v = Violations::default();
        check_credit_conservation(&c, &mut v);
        check_quiescent(&c, &mut v);
        for (r, p) in c.ranks().iter().enumerate() {
            check_stats(r, p, &RankTally::default(), &mut v);
        }
        assert!(v.is_empty(), "{:?}", v.items());
    }

    #[test]
    fn unconsumed_traffic_trips_quiescence() {
        let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
        c.rank(0).send(1, b"orphan", 9).unwrap();
        c.rank(1).progress().unwrap();
        let mut v = Violations::default();
        check_quiescent(&c, &mut v);
        assert!(!v.is_empty(), "undelivered remote event must fail quiescence");
    }

    #[test]
    fn stats_mismatch_is_reported() {
        let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
        c.rank(0).send(1, b"x", 1).unwrap();
        let mut v = Violations::default();
        // Harness claims it issued nothing.
        check_stats(0, c.rank(0), &RankTally::default(), &mut v);
        assert!(v.items().iter().any(|s| s.contains("stats.sends")));
    }
}
