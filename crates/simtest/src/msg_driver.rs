//! Two-sided (msg-layer) workload driver.
//!
//! A deterministic single-threaded stepper over [`photon_msg::MsgCluster`]:
//! seeded eager traffic driven through `send` / `try_recv` / `probe` in a
//! fixed round-robin, with delivery, integrity, per-pair FIFO and stats
//! invariants checked at quiescence. Eager sends post without blocking and
//! the receive side is drained with the non-blocking probe API, so — like
//! the Photon-core executor — the run is a pure function of the seed.

use crate::checkers::Violations;
use crate::exec::CaseReport;
use crate::{fnv1a, splitmix64};
use photon_fabric::NetworkModel;
use photon_msg::{MsgCluster, MsgConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Msg {
    src: usize,
    dst: usize,
    tag: u64,
    len: usize,
}

fn msg_bytes(seed: u64, case_id: u64, idx: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|k| {
            (splitmix64(seed ^ case_id.rotate_left(13) ^ ((idx as u64) << 24) ^ k as u64) >> 32)
                as u8
        })
        .collect()
}

/// Run one seeded msg-layer case; deterministic per `(seed, case_id)`.
pub fn run_msg_case(seed: u64, case_id: u64) -> CaseReport {
    let mut rng = StdRng::seed_from_u64(seed ^ case_id.wrapping_mul(0xA076_1D64_78BD_642F));
    let n = rng.gen_range(2usize..=4);
    let cluster = MsgCluster::new(
        n,
        if rng.gen_bool(0.5) { NetworkModel::ideal() } else { NetworkModel::ib_fdr() },
        MsgConfig { eager_threshold: 4096, ..MsgConfig::default() },
    );
    let count = rng.gen_range(16usize..=64);
    let mut pair_seq: HashMap<(usize, usize), u64> = HashMap::new();
    let msgs: Vec<Msg> = (0..count)
        .map(|_| {
            let src = rng.gen_range(0..n);
            let mut dst = rng.gen_range(0..n - 1);
            if dst >= src {
                dst += 1;
            }
            let tag = {
                let s = pair_seq.entry((src, dst)).or_insert(0);
                *s += 1;
                *s
            };
            Msg { src, dst, tag, len: rng.gen_range(1usize..=2048) }
        })
        .collect();

    let mut violations = Violations::default();
    let mut next_send = vec![0usize; n];
    let sends_of: Vec<Vec<usize>> =
        (0..n).map(|r| (0..count).filter(|&i| msgs[i].src == r).collect()).collect();
    let mut received = vec![false; count];
    let mut last_tag_seen: HashMap<(usize, usize), u64> = HashMap::new();
    let mut transcript = String::new();
    let mut delivered = 0usize;
    let mut idle = 0u32;

    while delivered < count {
        let mut progressed = false;
        for r in 0..n {
            let ep = cluster.rank(r);
            // Issue up to two sends per sweep.
            for _ in 0..2 {
                let Some(&i) = sends_of[r].get(next_send[r]) else { break };
                let m = msgs[i];
                let data = msg_bytes(seed, case_id, i, m.len);
                match ep.send(m.dst, &data, m.tag) {
                    Ok(()) => {
                        next_send[r] += 1;
                        progressed = true;
                    }
                    Err(e) => {
                        violations.push(format!("rank {r}: send #{i} failed: {e}"));
                        next_send[r] += 1;
                    }
                }
            }
            // Drain arrivals.
            for _ in 0..4 {
                match ep.try_recv(None, None) {
                    Ok(Some(got)) => {
                        progressed = true;
                        let key = msgs
                            .iter()
                            .position(|m| m.src == got.src && m.dst == r && m.tag == got.tag);
                        let Some(i) = key else {
                            violations.push(format!(
                                "rank {r}: unexpected message src {} tag {}",
                                got.src, got.tag
                            ));
                            continue;
                        };
                        if received[i] {
                            violations.push(format!("rank {r}: duplicate delivery of msg #{i}"));
                            continue;
                        }
                        received[i] = true;
                        delivered += 1;
                        let want = msg_bytes(seed, case_id, i, msgs[i].len);
                        if got.data != want {
                            violations.push(format!("rank {r}: msg #{i} payload corrupt"));
                        }
                        // Same-pair messages must arrive in tag order.
                        let last = last_tag_seen.entry((got.src, r)).or_insert(0);
                        if got.tag <= *last {
                            violations.push(format!(
                                "rank {r}: FIFO violation from {}: tag {} after {}",
                                got.src, got.tag, *last
                            ));
                        }
                        *last = got.tag;
                        transcript.push_str(&format!(
                            "{},{},{},{},{:#x}\n",
                            got.src,
                            r,
                            got.tag,
                            got.len,
                            fnv1a(&got.data)
                        ));
                    }
                    Ok(None) => break,
                    Err(e) => {
                        violations.push(format!("rank {r}: try_recv failed: {e}"));
                        break;
                    }
                }
            }
        }
        idle = if progressed { 0 } else { idle + 1 };
        if idle > 8 {
            violations.push(format!("msg case stuck: delivered {delivered}/{count}"));
            break;
        }
    }

    // Quiescence: nothing left to probe anywhere.
    for r in 0..n {
        let ep = cluster.rank(r);
        match ep.probe(None, None) {
            Ok(Some((src, tag, len))) => violations.push(format!(
                "rank {r}: residual message at quiescence (src {src}, tag {tag}, {len}B)"
            )),
            Ok(None) => {}
            Err(e) => violations.push(format!("rank {r}: quiescence probe failed: {e}")),
        }
    }
    // Stats consistency: every issued send and every delivery is counted.
    let (mut sends, mut recvs) = (0u64, 0u64);
    for r in 0..n {
        let s = cluster.rank(r).stats();
        sends += s.sends_eager + s.sends_rdv;
        recvs += s.recvs;
    }
    if sends != count as u64 {
        violations.push(format!("stats: {sends} sends counted, {count} issued"));
    }
    if recvs != count as u64 {
        violations.push(format!("stats: {recvs} recvs counted, {count} expected"));
    }

    let mut digest_src = transcript;
    for r in 0..n {
        digest_src.push_str(&format!("{:?}", cluster.rank(r).stats()));
    }
    for v in violations.items() {
        digest_src.push_str(v);
    }
    CaseReport {
        seed,
        case_id,
        violations: violations.into_items(),
        digest: fnv1a(digest_src.as_bytes()),
        sweeps: 0,
        resolved_err: 0,
        stats: Vec::new(),
        trace_csv: Vec::new(),
        span_json: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_cases_pass_and_replay_identically() {
        for case in 0..4 {
            let a = run_msg_case(0xBEEF, case);
            assert!(a.violations.is_empty(), "case {case}: {:?}", a.violations);
            let b = run_msg_case(0xBEEF, case);
            assert_eq!(a.digest, b.digest, "case {case} nondeterministic");
        }
    }
}
