//! DS chaos driver: concurrent DHT/queue clients under crash/partition,
//! checked for per-key linearizability.
//!
//! A ds-campaign case reuses the rpc campaign's schedule shape (one
//! many-clients workload with chaos riding along) but drives the
//! `photon-ds` structures instead of the KV server: each [`Op::RpcCall`] is
//! reinterpreted as a DHT `get`/`put`/`cas` (`method` keeps its 0/1/2
//! meaning) and its delivery-policy draw picks the **access path** — the
//! at-most-once band maps to one-sided RDMA, the rest to RPC — so both
//! paths interleave on the same contended 8-key space while nodes crash and
//! links partition. Every fourth case drives the MPSC queue instead.
//!
//! # The checkers
//!
//! *DHT cases* record a timed history per key (logical invocation/response
//! ticks from a global counter; every mutation writes a value unique to its
//! op) and check **linearizability per key** with a Wing–Gong style
//! memoized search: some sequential order of the operations, consistent
//! with real-time (an op that returned before another was invoked must
//! linearize first), must explain every observed read and cas verdict.
//! Operations that resolved as typed errors are *indeterminate* — a timed-out
//! put may or may not have landed — so they enter the search as optional
//! mutations with unbounded response time. An untyped error, or a call that
//! never resolves, is a named violation on its own.
//!
//! *Queue cases* check what MPSC promises: no popped value was popped twice
//! or never pushed, and each producer's successfully-pushed values come out
//! in push order. Pushes that resolved as errors are indeterminate (their
//! value may legitimately surface), and completeness is deliberately not
//! asserted — a crashed owner takes undrained elements with it.

use crate::checkers::Violations;
use crate::exec::CaseReport;
use crate::fnv1a;
use crate::schedule::{FaultSpec, Op, Schedule, SimParams};
use photon_ds::{AccessPath, DQueue, DQueueConfig, Dht, DhtConfig, DsError};
use photon_fabric::{NetworkModel, VTime, Window};
use photon_runtime::{ActionRegistry, RtConfig, RtError, RuntimeCluster};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A register value in the checker: mutation tokens, unique per op.
type Val = u64;

/// One operation in a per-key history, as the linearizability search sees
/// it. Definite ops happened exactly as recorded; `Maybe*` ops resolved as
/// errors and may or may not have taken effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsEv {
    /// Completed lookup observing this value (`None` = absent).
    Read(Option<Val>),
    /// Completed last-write-wins store.
    Write(Val),
    /// Compare-and-set that reported success: requires the state to equal
    /// `expected` at its linearization point.
    CasOk(Option<Val>, Val),
    /// Compare-and-set that reported a mismatch, observing the current
    /// value: linearizes as an atomic read of that observation.
    CasFail(Option<Val>, Option<Val>),
    /// Store that resolved as an error: applied at most once, at any point
    /// after its invocation — or never.
    MaybeWrite(Val),
    /// Compare-and-set that resolved as an error: may have applied iff the
    /// state matched `expected` at some point after its invocation.
    MaybeCas(Option<Val>, Val),
}

/// A history entry: the event plus logical invocation/response ticks.
/// Indeterminate ops carry `ret = u64::MAX` (their effect, if any, has no
/// real-time upper bound the checker could trust).
#[derive(Debug, Clone, Copy)]
pub struct Timed {
    /// What happened.
    pub ev: DsEv,
    /// Logical tick taken just before the call was issued.
    pub inv: u64,
    /// Logical tick taken after it returned (`u64::MAX` = indeterminate).
    pub ret: u64,
}

/// Is `hist` (one key's operations) linearizable from an initially-absent
/// register? Wing–Gong search: repeatedly pick a *minimal* pending op (one
/// no other pending op finished before it started) and try it as the next
/// linearization point; indeterminate ops may also be dropped entirely.
/// Memoized on `(done-set, state)` — re-reaching a visited configuration
/// cannot succeed where it already failed.
pub fn linearizable_key(hist: &[Timed]) -> bool {
    assert!(hist.len() <= 64, "per-key history too long for the bitmask search");
    let definite: u64 = hist
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.ev, DsEv::MaybeWrite(_) | DsEv::MaybeCas(..)))
        .fold(0, |m, (i, _)| m | 1 << i);
    let mut memo = HashSet::new();
    search(hist, definite, 0, None, &mut memo)
}

fn search(
    hist: &[Timed],
    definite: u64,
    done: u64,
    state: Option<Val>,
    memo: &mut HashSet<(u64, Option<Val>)>,
) -> bool {
    if definite & !done == 0 {
        // Every definite op is explained; leftover indeterminate ops
        // linearize after the history's end, where nothing observes them.
        return true;
    }
    if !memo.insert((done, state)) {
        return false;
    }
    for i in 0..hist.len() {
        if done & 1 << i != 0 {
            continue;
        }
        // Real-time order: i can be next only if no *pending* op finished
        // before i was invoked.
        let minimal =
            (0..hist.len()).all(|j| done & 1 << j != 0 || j == i || hist[j].ret >= hist[i].inv);
        if !minimal {
            continue;
        }
        let next = done | 1 << i;
        let ok = match hist[i].ev {
            DsEv::Read(v) => state == v && search(hist, definite, next, state, memo),
            DsEv::Write(v) => search(hist, definite, next, Some(v), memo),
            DsEv::CasOk(exp, new) => state == exp && search(hist, definite, next, Some(new), memo),
            DsEv::CasFail(exp, obs) => {
                state == obs && exp != obs && search(hist, definite, next, state, memo)
            }
            DsEv::MaybeWrite(v) => {
                // Either it landed here, or it never landed at all.
                search(hist, definite, next, Some(v), memo)
                    || search(hist, definite, next, state, memo)
            }
            DsEv::MaybeCas(exp, new) => {
                (state == exp && search(hist, definite, next, Some(new), memo))
                    || search(hist, definite, next, state, memo)
            }
        };
        if ok {
            return true;
        }
    }
    false
}

/// How a ds *error* classifies, for the resolution audit.
enum Resolution {
    /// A typed, expected error: transport ([`RtError`]) or back-pressure
    /// ([`DsError::Unavailable`] / [`DsError::QueueFull`]).
    TypedErr,
    /// Anything else — always a violation.
    Unexpected(String),
}

fn classify(err: &DsError) -> Resolution {
    use photon_core::PhotonError as PE;
    match err {
        // Chaos-legal failures: RPC outcomes, fast-failed/flushed one-sided
        // ops toward dead or partitioned peers, wall-clock wait deadlines,
        // and the structures' own back-pressure verdicts.
        DsError::Rt(RtError::Photon(
            PE::RpcTimeout { .. }
            | PE::RpcFailed { .. }
            | PE::PeerDead(_)
            | PE::OpFailed { .. }
            | PE::Timeout { .. }
            | PE::Fabric(_),
        ))
        | DsError::Rt(RtError::PeerDead(_))
        | DsError::Unavailable(_)
        | DsError::QueueFull => Resolution::TypedErr,
        other => Resolution::Unexpected(format!("{other:?}")),
    }
}

/// The unique mutation value for op `idx` (never 0; doubles as the queue
/// payload token).
fn token_of(idx: usize) -> u64 {
    1 + idx as u64
}

/// The access path for a schedule op: the at-most-once policy band maps to
/// one-sided RDMA so roughly half of all traffic exercises each path.
fn path_of(policy: u8) -> AccessPath {
    if policy == 2 {
        AccessPath::OneSided
    } else {
        AccessPath::Rpc
    }
}

/// One recorded call: key, event, ticks. `Ok(None)` = errored read (no
/// effect, no observation — it only proves the call resolved); `Err` = an
/// untyped error, reported verbatim as a violation.
struct Recorded {
    key: u8,
    ev: Result<Option<DsEv>, String>,
    inv: u64,
    ret: u64,
}

/// Run one seeded ds chaos case. Schedule and chaos are deterministic per
/// `(seed, case_id)`; thread interleavings are not, so the digest hashes
/// only stable facts (shape + verdicts), like the rpc driver's.
pub fn run_ds_case(seed: u64, case_id: u64, params: &SimParams) -> CaseReport {
    let sched = Schedule::generate(seed, case_id, params);
    let n = sched.nodes;
    let model = match sched.model {
        0 => NetworkModel::ideal(),
        1 => NetworkModel::ib_fdr(),
        _ => NetworkModel::ethernet_10g(),
    };
    let cluster = RuntimeCluster::new(
        n,
        model,
        RtConfig { photon: sched.cfg, ..RtConfig::default() },
        ActionRegistry::new(),
    );

    // Fault plan + chaos ops install before any traffic, as everywhere.
    {
        let faults = cluster.photon().fabric().switch().faults();
        faults.set_jitter_seed(seed ^ case_id);
        for f in &sched.faults {
            match *f {
                FaultSpec::DegradeLink { src, dst, extra_ns, from_ns, until_ns } => {
                    faults.degrade_link_during(
                        src,
                        dst,
                        extra_ns,
                        Window::new(VTime(from_ns), VTime(until_ns)),
                    );
                }
                FaultSpec::StraggleNode { node, extra_ns, from_ns, until_ns } => {
                    faults.straggle_node_during(
                        node,
                        extra_ns,
                        Window::new(VTime(from_ns), VTime(until_ns)),
                    );
                }
                FaultSpec::Jitter { bound_ns, seed, from_ns, until_ns } => {
                    faults.set_jitter_seed(seed);
                    faults
                        .set_jitter_during(bound_ns, Window::new(VTime(from_ns), VTime(until_ns)));
                }
            }
        }
        for op in &sched.ops {
            match *op {
                Op::CrashNode { node, at_ns } => faults.kill_node_at(node, VTime(at_ns)),
                Op::Partition { a, b, from_ns, until_ns } => {
                    faults.partition_during(a, b, Window::new(VTime(from_ns), VTime(until_ns)));
                }
                _ => {}
            }
        }
    }

    let mut per_client: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, op) in sched.ops.iter().enumerate() {
        if let Op::RpcCall { client, .. } = *op {
            per_client[client].push(i);
        }
    }

    // Every fourth case drives the queue; the rest drive the DHT.
    let violations = if case_id % 4 == 3 {
        run_queue_case(&cluster, &sched, &per_client)
    } else {
        run_dht_case(&cluster, &sched, &per_client)
    };
    cluster.shutdown();

    let flavor = if case_id % 4 == 3 { "dq" } else { "dht" };
    let digest_src =
        format!("ds n={n} flavor={flavor} ops={} v={:?}", sched.ops.len(), violations.items());
    CaseReport {
        seed,
        case_id,
        violations: violations.into_items(),
        digest: fnv1a(digest_src.as_bytes()),
        sweeps: 0,
        resolved_err: 0,
        stats: Vec::new(),
        trace_csv: Vec::new(),
        span_json: String::new(),
    }
}

/// Spawn the clock nudger + one worker per client rank, then run the
/// workload body. Mirrors the rpc driver's threading shape.
fn with_clients<F>(cluster: &RuntimeCluster, per_client: &[Vec<usize>], body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let n = cluster.len();
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            while !done.load(Ordering::Acquire) {
                for r in 0..n {
                    cluster.node(r).photon().elapse(20_000);
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        });
        let workers: Vec<_> = (0..n)
            .filter(|r| !per_client[*r].is_empty())
            .map(|r| {
                let (per_client, body) = (&per_client, &body);
                s.spawn(move || {
                    for &idx in &per_client[r] {
                        cluster.node(r).photon().elapse(20_000);
                        body(r, idx);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("ds client worker");
        }
        done.store(true, Ordering::Release);
    });
}

fn run_dht_case(
    cluster: &RuntimeCluster,
    sched: &Schedule,
    per_client: &[Vec<usize>],
) -> Violations {
    let dht = Dht::new(
        cluster,
        DhtConfig { buckets_per_rank: 64, key_max: 8, val_max: 16, ..DhtConfig::default() },
    )
    .expect("dht boots before chaos");

    let clock = AtomicU64::new(0);
    let records: Vec<Mutex<Option<Recorded>>> =
        sched.ops.iter().map(|_| Mutex::new(None)).collect();
    let mut violations = Violations::default();

    with_clients(cluster, per_client, |rank, idx| {
        let Op::RpcCall { method, key, policy, .. } = sched.ops[idx] else {
            unreachable!("per_client holds only call ops");
        };
        let node = cluster.node(rank);
        let k = [key];
        let token = token_of(idx);
        let val = token.to_le_bytes();
        let inv = clock.fetch_add(1, Ordering::Relaxed);
        let (ev, err) = match method {
            0 => match dht.get(node, &k, path_of(policy)) {
                Ok(v) => (Some(DsEv::Read(v.map(decode_val))), None),
                Err(e) => (None, Some(e)), // reads have no effect to model
            },
            1 => match dht.put(node, &k, &val, path_of(policy)) {
                Ok(()) => (Some(DsEv::Write(token)), None),
                Err(e) => (Some(DsEv::MaybeWrite(token)), Some(e)),
            },
            _ => {
                // Expected value guessed from a racy fresh read; whether the
                // swap lands is decided by contention, which is the point.
                // An unreadable key (dead owner) guesses "absent".
                let exp = dht.get(node, &k, AccessPath::Rpc).ok().flatten();
                let expected = exp.as_deref();
                match dht.cas(node, &k, expected, &val) {
                    Ok((true, _)) => (Some(DsEv::CasOk(exp.map(decode_val), token)), None),
                    Ok((false, obs)) => {
                        (Some(DsEv::CasFail(exp.map(decode_val), obs.map(decode_val))), None)
                    }
                    Err(e) => (Some(DsEv::MaybeCas(exp.map(decode_val), token)), Some(e)),
                }
            }
        };
        let ret = if err.is_some() { u64::MAX } else { clock.fetch_add(1, Ordering::Relaxed) };
        let ev = match err {
            Some(e) => match classify(&e) {
                Resolution::TypedErr => Ok(ev),
                Resolution::Unexpected(msg) => Err(format!("op {idx}: untyped ds error {msg}")),
            },
            None => Ok(ev),
        };
        *records[idx].lock().expect("record lock") = Some(Recorded { key, ev, inv, ret });
    });

    // Resolution audit + per-key histories.
    let mut per_key: HashMap<u8, Vec<Timed>> = HashMap::new();
    for (idx, op) in sched.ops.iter().enumerate() {
        let Op::RpcCall { .. } = op else { continue };
        let rec = records[idx].lock().expect("record lock").take();
        let Some(rec) = rec else {
            violations.push(format!("op {idx}: call never resolved"));
            continue;
        };
        match rec.ev {
            Err(msg) => violations.push(msg),
            Ok(Some(ev)) => {
                per_key.entry(rec.key).or_default().push(Timed { ev, inv: rec.inv, ret: rec.ret })
            }
            Ok(None) => {} // errored read: resolved, nothing to model
        }
    }
    let mut keys: Vec<u8> = per_key.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let hist = &per_key[&key];
        if !linearizable_key(hist) {
            violations.push(format!("key {key}: history not linearizable: {hist:?}"));
        }
    }
    violations
}

fn decode_val(v: Vec<u8>) -> Val {
    u64::from_le_bytes(v.as_slice().try_into().expect("ds values are token u64s"))
}

fn run_queue_case(
    cluster: &RuntimeCluster,
    sched: &Schedule,
    per_client: &[Vec<usize>],
) -> Violations {
    let owner = sched.rpc_server.expect("ds schedules carry an owner rank");
    let q = DQueue::new(
        cluster,
        DQueueConfig { capacity: 16, val_max: 16, owner, ..Default::default() },
    )
    .expect("queue boots before chaos");

    // Push outcome per op: Ok(true) = success, Ok(false) = typed error
    // (indeterminate), Err = untyped error, None = never resolved.
    let outcomes: Vec<Mutex<Option<Result<bool, String>>>> =
        sched.ops.iter().map(|_| Mutex::new(None)).collect();
    let popped = Mutex::new(Vec::<u64>::new());
    let producers_done = AtomicBool::new(false);
    let mut violations = Violations::default();

    std::thread::scope(|s| {
        // Consumer at the owner: drain until producers finish and the queue
        // stays empty (or the owner's fabric dies). Bounded empty-polling —
        // a producer that errored between ticket claim and publish wedges
        // the head, and that must end the case, not hang it.
        s.spawn(|| {
            let node = cluster.node(owner);
            let mut idle = 0u32;
            loop {
                node.photon().elapse(20_000);
                match q.pop(node) {
                    Ok(Some(v)) if v.len() == 8 => {
                        popped.lock().expect("popped lock").push(decode_val(v));
                        idle = 0;
                    }
                    Ok(Some(_)) | Err(_) => break, // torn value / dead owner
                    Ok(None) => {
                        idle += 1;
                        if producers_done.load(Ordering::Acquire) && idle > 50 {
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            }
        });

        with_clients(cluster, per_client, |rank, idx| {
            let Op::RpcCall { policy, .. } = sched.ops[idx] else {
                unreachable!("per_client holds only call ops");
            };
            let node = cluster.node(rank);
            let val = token_of(idx).to_le_bytes();
            let out = match q.push(node, &val, path_of(policy)) {
                Ok(()) => Ok(true),
                Err(e) => match classify(&e) {
                    Resolution::TypedErr => Ok(false),
                    Resolution::Unexpected(msg) => Err(format!("op {idx}: untyped ds error {msg}")),
                },
            };
            *outcomes[idx].lock().expect("outcome lock") = Some(out);
        });
        producers_done.store(true, Ordering::Release);
    });

    // MPSC contract audit.
    let mut pushed_ok: Vec<Vec<u64>> = vec![Vec::new(); cluster.len()];
    let mut attempted = HashSet::new();
    for (idx, op) in sched.ops.iter().enumerate() {
        let Op::RpcCall { client, .. } = *op else { continue };
        attempted.insert(token_of(idx));
        match outcomes[idx].lock().expect("outcome lock").take() {
            Some(Ok(true)) => pushed_ok[client].push(token_of(idx)),
            Some(Ok(false)) => {}
            Some(Err(msg)) => violations.push(msg),
            None => violations.push(format!("op {idx}: push never resolved")),
        }
    }
    let popped = popped.into_inner().expect("popped lock");
    let mut seen = HashSet::new();
    for &v in &popped {
        if !attempted.contains(&v) {
            violations.push(format!("popped value {v} was never pushed"));
        }
        if !seen.insert(v) {
            violations.push(format!("value {v} popped twice"));
        }
    }
    // Per producer, successful pushes surface in push order (each success
    // fully published before the producer's next push started).
    for (client, mine) in pushed_ok.iter().enumerate() {
        let order: Vec<u64> = popped.iter().copied().filter(|v| mine.contains(v)).collect();
        let expected: Vec<u64> = mine.iter().copied().filter(|v| order.contains(v)).collect();
        if order != expected {
            violations
                .push(format!("producer {client}: pops {order:?} out of push order {expected:?}"));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ev: DsEv, inv: u64, ret: u64) -> Timed {
        Timed { ev, inv, ret }
    }

    #[test]
    fn ds_cases_hold_invariants() {
        let p = SimParams::ds();
        for case in 0..4 {
            // Case 3 is a queue case, 0..3 are dht cases.
            let rep = run_ds_case(0xD5, case, &p);
            assert!(rep.violations.is_empty(), "case {case}: {:?}", rep.violations);
        }
    }

    #[test]
    fn sequential_histories_linearize() {
        // write 1 · read 1 · cas(1→2) ok · read 2, strictly ordered.
        let h = [
            t(DsEv::Write(1), 0, 1),
            t(DsEv::Read(Some(1)), 2, 3),
            t(DsEv::CasOk(Some(1), 2), 4, 5),
            t(DsEv::Read(Some(2)), 6, 7),
        ];
        assert!(linearizable_key(&h));
        assert!(linearizable_key(&[])); // empty history is trivially fine
        assert!(linearizable_key(&[t(DsEv::Read(None), 0, 1)]));
    }

    #[test]
    fn stale_reads_are_caught() {
        // Non-overlapping write 1 · write 2 · read 1: the read returned
        // after write 2 completed, so observing 1 is a real-time violation.
        let h = [t(DsEv::Write(1), 0, 1), t(DsEv::Write(2), 2, 3), t(DsEv::Read(Some(1)), 4, 5)];
        assert!(!linearizable_key(&h));
        // ...but with the write and read overlapping, either order works.
        let h = [t(DsEv::Write(1), 0, 1), t(DsEv::Write(2), 2, 6), t(DsEv::Read(Some(1)), 4, 5)];
        assert!(linearizable_key(&h));
    }

    #[test]
    fn phantom_and_lost_values_are_caught() {
        // A read observing a value nobody wrote.
        assert!(!linearizable_key(&[t(DsEv::Read(Some(9)), 0, 1)]));
        // A cas that succeeded against an expectation that never held.
        let h = [t(DsEv::Write(1), 0, 1), t(DsEv::CasOk(Some(3), 4), 2, 3)];
        assert!(!linearizable_key(&h));
        // A cas-mismatch that observed the value it claimed mismatched.
        assert!(!linearizable_key(&[
            t(DsEv::Write(1), 0, 1),
            t(DsEv::CasFail(Some(1), Some(1)), 2, 3),
        ]));
    }

    #[test]
    fn indeterminate_ops_may_or_may_not_apply() {
        // A timed-out write explains a later read of its value...
        let h = [
            t(DsEv::Write(1), 0, 1),
            t(DsEv::MaybeWrite(2), 2, u64::MAX),
            t(DsEv::Read(Some(2)), 4, 5),
        ];
        assert!(linearizable_key(&h));
        // ...and equally explains never appearing at all...
        let h = [
            t(DsEv::Write(1), 0, 1),
            t(DsEv::MaybeWrite(2), 2, u64::MAX),
            t(DsEv::Read(Some(1)), 4, 5),
        ];
        assert!(linearizable_key(&h));
        // ...but cannot explain a third value.
        let h = [
            t(DsEv::Write(1), 0, 1),
            t(DsEv::MaybeWrite(2), 2, u64::MAX),
            t(DsEv::Read(Some(7)), 4, 5),
        ];
        assert!(!linearizable_key(&h));
        // An indeterminate op's effect still cannot precede its invocation.
        let h = [t(DsEv::Read(Some(2)), 0, 1), t(DsEv::MaybeWrite(2), 2, u64::MAX)];
        assert!(!linearizable_key(&h));
    }

    #[test]
    fn ds_schedules_reuse_the_rpc_shape() {
        let p = SimParams::ds();
        let s = Schedule::generate(0xC1C7, 0, &p);
        assert!(s.rpc_server.is_some(), "ds cases reuse the rpc generator");
        assert!(s.ops.iter().any(|o| matches!(o, Op::RpcCall { .. })));
    }
}
