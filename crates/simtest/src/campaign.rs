//! Campaign runner: many seeded cases, parallel *across* cases.
//!
//! A campaign is a named parameter preset plus a case count. Case `i` of a
//! campaign with seed `S` is always `(S, i)` — workers pull case ids from a
//! shared counter but results are collected in id order, so the campaign
//! digest is independent of `--jobs`. Failures carry a one-line reproducer
//! (`SIMTEST_SEED=… SIMTEST_CASE=… cargo run -q -p photon-simtest --bin
//! simtest -- replay <campaign>`) and, for schedule-based cases, a shrunk
//! schedule.
//!
//! Before generated cases run, known-bad seeds from the committed corpus
//! (`proptest-regressions/simtest.txt`) for this campaign are replayed, so
//! past failures act as permanent regression tests.

use crate::churn_driver::run_churn_case;
use crate::ds_driver::run_ds_case;
use crate::exec::CaseReport;
use crate::fnv1a;
use crate::msg_driver::run_msg_case;
use crate::rpc_driver::run_rpc_case;
use crate::rt_driver::run_runtime_case;
use crate::schedule::{Schedule, SimParams};
use crate::shrink::shrink_schedule;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Named campaign presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Campaign {
    /// Mixed ops, moderate faults — the default tier-1 gate.
    Smoke,
    /// Tiny ledgers/rings everywhere: maximum backpressure on the credit
    /// protocol.
    Credits,
    /// Every case carries a fault plan plus registration churn.
    Faults,
    /// Quiescence-focused mix that also exercises the msg and runtime
    /// layers' own drivers.
    Quiescence,
    /// Peer-failure chaos: every case crashes a node and/or partitions a
    /// link mid-traffic; the all-ops-resolve checker enforces that no op
    /// ever hangs.
    Crash,
    /// RPC delivery-semantics chaos: many clients hammer one KV server
    /// while nodes crash and links partition mid-call; the token audit
    /// enforces that at-most-once traffic never double-applies and every
    /// call resolves to a success or a typed error.
    Rpc,
    /// Distributed-data-structure chaos: concurrent DHT (and, every fourth
    /// case, MPSC-queue) clients mix one-sided and RPC paths while nodes
    /// crash and links partition; a per-key linearizability checker must
    /// explain every observation, with errored ops as indeterminate.
    Ds,
    /// Membership churn: nodes crash, rejoin and late-join mid-traffic
    /// while every rank runs gossip membership over a bounded connection
    /// cache; checkers enforce all-ops-resolve, view convergence to fabric
    /// ground truth, reconnect-on-demand and bounded per-rank state.
    Churn,
}

impl Campaign {
    /// All campaigns, in CLI listing order.
    pub fn all() -> [Campaign; 8] {
        [
            Campaign::Smoke,
            Campaign::Credits,
            Campaign::Faults,
            Campaign::Quiescence,
            Campaign::Crash,
            Campaign::Rpc,
            Campaign::Ds,
            Campaign::Churn,
        ]
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Campaign::Smoke => "smoke",
            Campaign::Credits => "credits",
            Campaign::Faults => "faults",
            Campaign::Quiescence => "quiescence",
            Campaign::Crash => "crash",
            Campaign::Rpc => "rpc",
            Campaign::Ds => "ds",
            Campaign::Churn => "churn",
        }
    }

    /// Parse a CLI name.
    pub fn from_name(s: &str) -> Option<Campaign> {
        Campaign::all().into_iter().find(|c| c.name() == s)
    }

    /// Generator bounds for this campaign's schedule-based cases.
    pub fn params(self) -> SimParams {
        match self {
            Campaign::Smoke => SimParams::smoke(),
            Campaign::Credits => SimParams::credits(),
            Campaign::Faults => SimParams::faults(),
            Campaign::Quiescence => SimParams::quiescence(),
            Campaign::Crash => SimParams::crash(),
            Campaign::Rpc => SimParams::rpc(),
            Campaign::Ds => SimParams::ds(),
            Campaign::Churn => SimParams::churn(),
        }
    }
}

/// Options for [`run_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignOpts {
    /// Number of generated cases.
    pub cases: u64,
    /// Campaign seed; case `i` runs as `(seed, i)`.
    pub seed: u64,
    /// Worker threads (parallelism is across cases; 0 is treated as 1).
    pub jobs: usize,
    /// Shrink failing schedule-based cases.
    pub shrink: bool,
    /// Regression corpus path; `None` uses the committed default and
    /// silently skips a missing file.
    pub corpus: Option<PathBuf>,
    /// Dedicated progress threads per simulated cluster
    /// (`PhotonConfig::progress_threads`). Applies to schedule-based cases
    /// only — the rpc/ds/msg/runtime drivers keep their own configs. With
    /// threads enabled, completion fan-out timing is real-thread timing, so
    /// case digests are not run-to-run stable; invariants and verdicts are
    /// what threaded campaigns gate on. `0` (the default) keeps the fully
    /// deterministic inline executor.
    pub progress_threads: usize,
}

impl Default for CampaignOpts {
    fn default() -> Self {
        CampaignOpts {
            cases: 50,
            seed: 0x5EED,
            jobs: 4,
            shrink: true,
            corpus: None,
            progress_threads: 0,
        }
    }
}

/// One failing case, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Campaign seed the case ran under.
    pub seed: u64,
    /// Case id.
    pub case_id: u64,
    /// Which campaign's parameters it used.
    pub campaign: Campaign,
    /// Invariant violations, in discovery order.
    pub violations: Vec<String>,
    /// `Display` of the shrunk schedule, when shrinking ran and helped.
    pub shrunk: Option<String>,
    /// Where the case's op-lifecycle span trace (Chrome trace_event JSON,
    /// loadable in Perfetto / `chrome://tracing`) was written, when the
    /// case produced spans and the dump succeeded.
    pub span_path: Option<PathBuf>,
}

impl CaseFailure {
    /// The copy-pasteable one-line reproducer.
    pub fn reproducer(&self) -> String {
        format!(
            "SIMTEST_SEED={:#x} SIMTEST_CASE={} cargo run -q -p photon-simtest --bin simtest -- replay {}",
            self.seed,
            self.case_id,
            self.campaign.name()
        )
    }

    /// The corpus line that pins this failure as a regression test.
    pub fn corpus_line(&self) -> String {
        format!("{} {:#x} {}", self.campaign.name(), self.seed, self.case_id)
    }
}

/// Outcome of a whole campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The campaign that ran.
    pub campaign: Campaign,
    /// Generated cases executed (corpus replays come on top).
    pub cases_run: u64,
    /// Corpus entries replayed before the generated cases.
    pub corpus_run: u64,
    /// FNV-1a over the per-case digests of the generated cases, in case-id
    /// order. Identical across machines and `--jobs` levels.
    pub digest: u64,
    /// Every failing case (corpus and generated).
    pub failures: Vec<CaseFailure>,
}

impl CampaignResult {
    /// True when no case failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable report; failure entries include the reproducer line
    /// and any shrunk schedule.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "campaign {}: {} cases ({} corpus), {} failure(s), digest {:#018x}\n",
            self.campaign.name(),
            self.cases_run,
            self.corpus_run,
            self.failures.len(),
            self.digest
        );
        for f in &self.failures {
            let _ = writeln!(s, "case {} FAILED:", f.case_id);
            for v in &f.violations {
                let _ = writeln!(s, "  - {v}");
            }
            let _ = writeln!(s, "  reproduce: {}", f.reproducer());
            if let Some(p) = &f.span_path {
                let _ = writeln!(s, "  span trace: {}", p.display());
            }
            let _ = writeln!(
                s,
                "  pin it:    echo '{}' >> proptest-regressions/simtest.txt",
                f.corpus_line()
            );
            if let Some(sh) = &f.shrunk {
                let _ = writeln!(s, "  shrunk schedule:");
                for line in sh.lines() {
                    let _ = writeln!(s, "    {line}");
                }
            }
        }
        s
    }
}

/// True when `(campaign, case_id)` dispatches to the schedule-based
/// Photon-core executor (and is therefore shrinkable). Rpc cases always
/// run the threaded rpc driver instead.
pub fn is_schedule_case(campaign: Campaign, case_id: u64) -> bool {
    match campaign {
        Campaign::Rpc | Campaign::Ds | Campaign::Churn => false,
        Campaign::Quiescence => !(case_id % 8 == 3 || case_id % 8 == 6),
        _ => true,
    }
}

/// Run one case exactly as a campaign would: rpc campaigns dispatch to the
/// threaded rpc driver, the quiescence campaign interleaves msg-layer and
/// runtime-layer driver cases into the stream, and every other id (and
/// every other campaign) runs the schedule executor.
pub fn run_one(campaign: Campaign, seed: u64, case_id: u64) -> CaseReport {
    run_one_opts(campaign, seed, case_id, 0)
}

/// [`run_one`] with the campaign's progress-thread override. Only
/// schedule-based cases take the override (the rpc/ds/msg/runtime drivers
/// construct their own configurations); `0` means inline progress.
pub fn run_one_opts(
    campaign: Campaign,
    seed: u64,
    case_id: u64,
    progress_threads: usize,
) -> CaseReport {
    if campaign == Campaign::Rpc {
        run_rpc_case(seed, case_id, &campaign.params())
    } else if campaign == Campaign::Ds {
        run_ds_case(seed, case_id, &campaign.params())
    } else if campaign == Campaign::Churn {
        run_churn_case(seed, case_id, &campaign.params())
    } else if is_schedule_case(campaign, case_id) {
        crate::exec::run_case_cfg(seed, case_id, &campaign.params(), |cfg| {
            cfg.progress_threads = progress_threads
        })
    } else if case_id % 8 == 3 {
        run_msg_case(seed, case_id)
    } else {
        run_runtime_case(seed, case_id)
    }
}

/// Parse a corpus/CLI integer: decimal or `0x`-prefixed hex.
pub fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The committed corpus location (`proptest-regressions/simtest.txt` at the
/// workspace root).
pub fn default_corpus_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../proptest-regressions/simtest.txt")
}

/// Load corpus entries: one `<campaign> <seed> <case_id>` triple per line,
/// `#` comments and blank lines ignored, malformed lines skipped.
pub fn load_corpus(path: &Path) -> Vec<(String, u64, u64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let mut it = line.split_whitespace();
            let name = it.next()?.to_string();
            let seed = parse_u64(it.next()?)?;
            let case = parse_u64(it.next()?)?;
            Some((name, seed, case))
        })
        .collect()
}

/// Write a failing case's span trace (Chrome trace_event JSON) under the OS
/// temp dir so failure reports can point at it. Returns `None` when the case
/// produced no spans or the write failed — failure reporting must never
/// itself fail.
pub fn dump_span_trace(campaign: &str, rep: &CaseReport) -> Option<PathBuf> {
    if rep.span_json.is_empty() {
        return None;
    }
    let dir = std::env::temp_dir().join("photon-simtest");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("span-{campaign}-{:#x}-{}.json", rep.seed, rep.case_id));
    std::fs::write(&path, &rep.span_json).ok()?;
    Some(path)
}

fn failure_from(campaign: Campaign, rep: &CaseReport, shrink: bool) -> CaseFailure {
    let shrunk = if shrink && is_schedule_case(campaign, rep.case_id) {
        let sched = Schedule::generate(rep.seed, rep.case_id, &campaign.params());
        shrink_schedule(&sched, 128).map(|s| {
            format!("{} (shrunk from {} ops in {} runs)", s.schedule, sched.ops.len(), s.runs_used)
        })
    } else {
        None
    };
    CaseFailure {
        seed: rep.seed,
        case_id: rep.case_id,
        campaign,
        violations: rep.violations.clone(),
        shrunk,
        span_path: dump_span_trace(campaign.name(), rep),
    }
}

/// Run a campaign: corpus replays first, then `opts.cases` generated cases
/// across `opts.jobs` workers.
pub fn run_campaign(campaign: Campaign, opts: &CampaignOpts) -> CampaignResult {
    let mut failures = Vec::new();

    // Corpus replays (sequential — these are few and must not perturb the
    // generated-case digest).
    let corpus_path = opts.corpus.clone().unwrap_or_else(default_corpus_path);
    let corpus: Vec<(u64, u64)> = load_corpus(&corpus_path)
        .into_iter()
        .filter(|(name, _, _)| name == campaign.name())
        .map(|(_, s, c)| (s, c))
        .collect();
    for &(seed, case_id) in &corpus {
        let rep = run_one_opts(campaign, seed, case_id, opts.progress_threads);
        if !rep.passed() {
            failures.push(failure_from(campaign, &rep, opts.shrink));
        }
    }

    // Generated cases: workers pull ids from a counter, results land in
    // id-indexed slots so collection order never depends on scheduling.
    let total = opts.cases;
    let jobs = opts.jobs.clamp(1, 64).min(total.max(1) as usize);
    let next = AtomicU64::new(0);
    let slots: Vec<Mutex<Option<CaseReport>>> = (0..total).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let id = next.fetch_add(1, Ordering::Relaxed);
                if id >= total {
                    break;
                }
                let rep = run_one_opts(campaign, opts.seed, id, opts.progress_threads);
                *slots[id as usize].lock().expect("slot lock") = Some(rep);
            });
        }
    });

    let mut digest_src = String::new();
    for slot in &slots {
        let rep = slot.lock().expect("slot lock").take().expect("case ran");
        let _ = write!(digest_src, "{}:{:x};", rep.case_id, rep.digest);
        if !rep.passed() {
            failures.push(failure_from(campaign, &rep, opts.shrink));
        }
    }

    CampaignResult {
        campaign,
        cases_run: total,
        corpus_run: corpus.len() as u64,
        digest: fnv1a(digest_src.as_bytes()),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failing_case_gets_a_span_trace_dump() {
        // Any executed schedule case carries spans; fake a violation so the
        // failure path (dump + summary line) runs end to end.
        let mut rep = run_one(Campaign::Smoke, 0x5EED, 0);
        assert!(
            rep.span_json.starts_with("{\"displayTimeUnit\":"),
            "span JSON missing/ malformed: {}",
            &rep.span_json[..rep.span_json.len().min(80)]
        );
        assert!(rep.span_json.trim_end().ends_with('}'));
        rep.violations.push("synthetic violation for dump test".into());
        let f = failure_from(Campaign::Smoke, &rep, false);
        let path = f.span_path.clone().expect("span dump written");
        let text = std::fs::read_to_string(&path).expect("dump readable");
        assert_eq!(text, rep.span_json);
        // The summary points the user at the dump, next to the reproducer.
        let result = CampaignResult {
            campaign: Campaign::Smoke,
            cases_run: 1,
            corpus_run: 0,
            digest: 0,
            failures: vec![f],
        };
        let summary = result.summary();
        assert!(summary.contains("reproduce: "));
        assert!(summary.contains(&format!("span trace: {}", path.display())));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn campaign_names_round_trip() {
        for c in Campaign::all() {
            assert_eq!(Campaign::from_name(c.name()), Some(c));
        }
        assert_eq!(Campaign::from_name("bogus"), None);
    }

    #[test]
    fn digest_is_jobs_independent() {
        let mk = |jobs| CampaignOpts {
            cases: 6,
            seed: 0xD16E57,
            jobs,
            shrink: false,
            corpus: Some(PathBuf::from("/nonexistent")),
            progress_threads: 0,
        };
        let a = run_campaign(Campaign::Smoke, &mk(1));
        let b = run_campaign(Campaign::Smoke, &mk(3));
        assert!(a.passed(), "{}", a.summary());
        assert!(b.passed(), "{}", b.summary());
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn corpus_parses_and_filters() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("simtest-corpus-{}.txt", std::process::id()));
        std::fs::write(
            &path,
            "# pinned failures\nsmoke 0x10 3\n\ncredits 17 0\nbad-line\nsmoke 0x20 4\n",
        )
        .expect("write corpus");
        let entries = load_corpus(&path);
        assert_eq!(
            entries,
            vec![
                ("smoke".to_string(), 0x10, 3),
                ("credits".to_string(), 17, 0),
                ("smoke".to_string(), 0x20, 4),
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quiescence_campaign_mixes_all_drivers() {
        let opts = CampaignOpts {
            cases: 8, // ids 3 and 6 hit the msg and runtime drivers
            seed: 0x0AB5_CE55,
            jobs: 2,
            shrink: false,
            corpus: Some(PathBuf::from("/nonexistent")),
            progress_threads: 0,
        };
        let r = run_campaign(Campaign::Quiescence, &opts);
        assert!(r.passed(), "{}", r.summary());
        assert!(!is_schedule_case(Campaign::Quiescence, 3));
        assert!(!is_schedule_case(Campaign::Quiescence, 6));
        assert!(is_schedule_case(Campaign::Smoke, 3));
    }

    #[test]
    fn threaded_campaigns_uphold_invariants() {
        // Smoke and crash campaigns with the dedicated progress engine on:
        // every case's invariant checkers (integrity, quiescence, credits,
        // all-ops-resolve) must hold with background harvest threads racing
        // the executor sweep. Digests are not compared against inline runs —
        // threaded fan-out timing is real-thread timing.
        let opts = CampaignOpts {
            cases: 6,
            seed: 0x7EAD,
            jobs: 2,
            shrink: false,
            corpus: Some(PathBuf::from("/nonexistent")),
            progress_threads: 2,
        };
        for c in [Campaign::Smoke, Campaign::Crash] {
            let r = run_campaign(c, &opts);
            assert!(r.passed(), "{}", r.summary());
        }
    }
}
