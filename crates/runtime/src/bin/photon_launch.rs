//! `photon-launch` — spawn a multi-process Photon job on this host.
//!
//! ```text
//! photon-launch -n 4 -- target/debug/examples/pingpong --iters 100
//! photon-launch -n 2 --bind 127.0.0.1:7777 --env RUST_BACKTRACE=1 -- prog
//! photon-launch --spec job.toml
//! ```
//!
//! The launcher binds the TCP bootstrap rendezvous, spawns one process per
//! rank with `PHOTON_RANK` / `PHOTON_NRANKS` / `PHOTON_BOOTSTRAP` set (see
//! `photon_core::process`), waits for all ranks, and exits with the first
//! failing rank's code.

use photon_runtime::launch::{launch, LaunchSpec};

fn usage() -> ! {
    eprintln!(
        "usage: photon-launch -n <ranks> [--bind HOST:PORT] [--env K=V]... -- <program> [args...]\n\
         \x20      photon-launch --spec <job.toml>"
    );
    std::process::exit(2);
}

fn parse_cli(args: &[String]) -> Result<LaunchSpec, String> {
    let mut n: Option<usize> = None;
    let mut bind = "127.0.0.1:0".to_string();
    let mut env: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-n" | "--ranks" => {
                n = Some(
                    args.get(i + 1).and_then(|v| v.parse().ok()).ok_or("-n takes a rank count")?,
                );
                i += 2;
            }
            "--bind" => {
                bind = args.get(i + 1).ok_or("--bind takes HOST:PORT")?.clone();
                i += 2;
            }
            "--env" => {
                let kv = args.get(i + 1).ok_or("--env takes K=V")?;
                let (k, v) = kv.split_once('=').ok_or("--env takes K=V")?;
                env.push((k.to_string(), v.to_string()));
                i += 2;
            }
            "--" => {
                let n = n.ok_or("missing -n <ranks>")?;
                let program = args.get(i + 1).ok_or("missing program after --")?.clone();
                let mut spec = LaunchSpec::new(n, program);
                spec.bind = bind;
                spec.env = env;
                spec.args = args[i + 2..].to_vec();
                return Ok(spec);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Err("missing `-- <program>`".into())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let spec = if args[0] == "--spec" {
        let Some(path) = args.get(1) else { usage() };
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("photon-launch: read {path}: {e}");
            std::process::exit(2);
        });
        LaunchSpec::from_toml(&text).unwrap_or_else(|e| {
            eprintln!("photon-launch: {path}: {e}");
            std::process::exit(2);
        })
    } else {
        parse_cli(&args).unwrap_or_else(|e| {
            eprintln!("photon-launch: {e}");
            usage();
        })
    };
    eprintln!("photon-launch: {} rank(s) of {}", spec.n, spec.program);
    match launch(&spec) {
        Ok(0) => {}
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("photon-launch: {e}");
            std::process::exit(1);
        }
    }
}
