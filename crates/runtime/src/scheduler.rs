//! Per-node work-stealing scheduler.
//!
//! A compact version of the HPX-5 worker model: each node owns `w` worker
//! threads with local LIFO deques, a shared FIFO injector for externally
//! submitted work (parcels arriving off the network), and random stealing
//! between workers. Idle workers park on a condvar with a timeout so parcel
//! arrival latency stays bounded without spinning.

use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of work.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Parking {
    lock: Mutex<()>,
    cv: Condvar,
}

/// The shared half of a node scheduler.
pub struct Scheduler {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    parking: Parking,
    shutdown: AtomicBool,
    executed: AtomicU64,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.stealers.len())
            .field("executed", &self.executed.load(Ordering::Relaxed))
            .finish()
    }
}

impl Scheduler {
    /// Start a scheduler with `workers` threads. Returns the shared handle
    /// and the join handles (joined by the owner at shutdown).
    pub fn start(workers: usize, name: &str) -> (Arc<Scheduler>, Vec<JoinHandle<()>>) {
        let deques: Vec<Deque<Task>> = (0..workers).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let sched = Arc::new(Scheduler {
            injector: Injector::new(),
            stealers,
            parking: Parking::default(),
            shutdown: AtomicBool::new(false),
            executed: AtomicU64::new(0),
        });
        let handles = deques
            .into_iter()
            .enumerate()
            .map(|(i, dq)| {
                let s = Arc::clone(&sched);
                std::thread::Builder::new()
                    .name(format!("{name}-w{i}"))
                    .spawn(move || s.worker_loop(i, dq))
                    .expect("spawn worker")
            })
            .collect();
        (sched, handles)
    }

    /// Submit a task from outside the pool (network progress, application).
    pub fn submit(&self, t: Task) {
        self.injector.push(t);
        self.parking.cv.notify_one();
    }

    /// Request shutdown; workers exit once their queues drain.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.parking.cv.notify_all();
    }

    /// True once [`Scheduler::stop`] was called.
    pub fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Tasks executed so far.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    fn find_task(&self, local: &Deque<Task>, me: usize) -> Option<Task> {
        if let Some(t) = local.pop() {
            return Some(t);
        }
        loop {
            let s = self.injector.steal_batch_and_pop(local);
            if s.is_retry() {
                continue;
            }
            if let Some(t) = s.success() {
                return Some(t);
            }
            break;
        }
        // Steal from siblings, starting after ourselves.
        let n = self.stealers.len();
        for k in 1..n {
            let victim = (me + k) % n;
            loop {
                let s = self.stealers[victim].steal();
                if s.is_retry() {
                    continue;
                }
                if let Some(t) = s.success() {
                    return Some(t);
                }
                break;
            }
        }
        None
    }

    fn worker_loop(&self, me: usize, local: Deque<Task>) {
        loop {
            match self.find_task(&local, me) {
                Some(t) => {
                    t();
                    self.executed.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    if self.stopping() {
                        return;
                    }
                    let mut g = self.parking.lock.lock();
                    // Re-check under the lock to avoid a lost wakeup.
                    if self.injector.is_empty() && !self.stopping() {
                        self.parking.cv.wait_for(&mut g, Duration::from_millis(1));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_submitted_tasks() {
        let (s, handles) = Scheduler::start(4, "test");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            s.submit(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        while counter.load(Ordering::Relaxed) < 1000 {
            std::thread::yield_now();
        }
        assert_eq!(s.executed(), 1000);
        s.stop();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        // Recursive fan-out: 1 task spawns 2, depth 8 => 2^9 - 1 tasks.
        let (s, handles) = Scheduler::start(3, "fanout");
        let counter = Arc::new(AtomicUsize::new(0));
        fn fan(s: &Arc<Scheduler>, c: &Arc<AtomicUsize>, depth: u32) {
            c.fetch_add(1, Ordering::Relaxed);
            if depth == 0 {
                return;
            }
            for _ in 0..2 {
                let s2 = Arc::clone(s);
                let c2 = Arc::clone(c);
                let s3 = Arc::clone(s);
                s3.submit(Box::new(move || fan(&s2, &c2, depth - 1)));
            }
        }
        fan(&s, &counter, 8);
        let expect = (1usize << 9) - 1;
        while counter.load(Ordering::Relaxed) < expect {
            std::thread::yield_now();
        }
        s.stop();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn stop_terminates_idle_workers() {
        let (s, handles) = Scheduler::start(2, "idle");
        std::thread::sleep(Duration::from_millis(5));
        s.stop();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.executed(), 0);
    }
}
