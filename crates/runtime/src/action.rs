//! Action registration and the handler execution context.

use crate::runtime::RtNode;
use crate::{Rank, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a registered action; identical on every rank because the
/// registry is built once and shared (same-binary discipline).
pub type ActionId = u32;

/// First id handed to user actions; below this is runtime-internal.
pub const USER_ACTION_BASE: ActionId = 16;

type ActionFn = Arc<dyn Fn(&RtContext<'_>, &[u8]) -> Option<Vec<u8>> + Send + Sync>;

/// The table of parcel handlers.
///
/// Handlers take the execution context and the payload; returning
/// `Some(bytes)` feeds the parcel's continuation LCO (if any).
#[derive(Clone, Default)]
pub struct ActionRegistry {
    actions: Vec<ActionFn>,
    names: HashMap<String, ActionId>,
}

impl ActionRegistry {
    /// An empty registry.
    pub fn new() -> ActionRegistry {
        ActionRegistry::default()
    }

    /// Register `f` under `name`; returns its id. Must be called before the
    /// runtime starts, identically on all ranks (one registry is shared).
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&RtContext<'_>, &[u8]) -> Option<Vec<u8>> + Send + Sync + 'static,
    ) -> ActionId {
        let id = USER_ACTION_BASE + self.actions.len() as ActionId;
        self.actions.push(Arc::new(f));
        self.names.insert(name.to_string(), id);
        id
    }

    /// Look up an action id by name.
    pub fn id_of(&self, name: &str) -> Option<ActionId> {
        self.names.get(name).copied()
    }

    /// Fetch the handler for `id`.
    pub(crate) fn get(&self, id: ActionId) -> Option<ActionFn> {
        self.actions.get(id.checked_sub(USER_ACTION_BASE)? as usize).cloned()
    }

    /// Number of registered actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when no actions are registered.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

impl std::fmt::Debug for ActionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActionRegistry").field("actions", &self.actions.len()).finish()
    }
}

/// What a running action sees: its node, with parcel/LCO/GAS capabilities,
/// and the current parcel's continuation (if any) for delegation.
pub struct RtContext<'a> {
    pub(crate) node: &'a Arc<RtNode>,
    pub(crate) cont: Option<crate::lco::LcoRef>,
}

impl RtContext<'_> {
    /// This rank.
    pub fn rank(&self) -> Rank {
        self.node.rank()
    }

    /// Ranks in the job.
    pub fn size(&self) -> usize {
        self.node.size()
    }

    /// The node runtime (spawn, parcels, LCOs, GAS access).
    pub fn node(&self) -> &Arc<RtNode> {
        self.node
    }

    /// The continuation attached to the parcel being executed, if any.
    /// A handler that forwards work can *delegate* it with
    /// [`RtContext::send_parcel_with_cont`] instead of replying itself.
    pub fn cont(&self) -> Option<crate::lco::LcoRef> {
        self.cont
    }

    /// Fire-and-forget parcel to `target`.
    pub fn send_parcel(&self, target: Rank, action: ActionId, payload: &[u8]) -> Result<()> {
        self.node.send_parcel(target, action, payload)
    }

    /// Parcel with an explicit continuation (pass [`RtContext::cont`] to
    /// delegate the current parcel's reply obligation).
    pub fn send_parcel_with_cont(
        &self,
        target: Rank,
        action: ActionId,
        payload: &[u8],
        cont: Option<crate::lco::LcoRef>,
    ) -> Result<()> {
        match cont {
            Some(c) => self.node.send_parcel_with_cont(target, action, payload, c),
            None => self.node.send_parcel(target, action, payload),
        }
    }

    /// Spawn a local task on this node's scheduler.
    pub fn spawn(&self, f: impl FnOnce(&RtContext<'_>) + Send + 'static) {
        self.node.spawn(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assigns_dense_user_ids() {
        let mut r = ActionRegistry::new();
        let a = r.register("a", |_, _| None);
        let b = r.register("b", |_, _| None);
        assert_eq!(a, USER_ACTION_BASE);
        assert_eq!(b, USER_ACTION_BASE + 1);
        assert_eq!(r.id_of("a"), Some(a));
        assert_eq!(r.id_of("missing"), None);
        assert_eq!(r.len(), 2);
        assert!(r.get(a).is_some());
        assert!(r.get(USER_ACTION_BASE + 5).is_none());
        assert!(r.get(0).is_none(), "internal ids are not user actions");
    }
}
