//! Parcel coalescing.
//!
//! Fine-grained message-driven applications (GUPS, graph traversal) emit
//! torrents of tiny parcels; per-message injection overhead then dominates.
//! Coalescing buffers parcels per destination and flushes a whole batch as
//! one eager message — the aggregation optimization the HPX/AM++ literature
//! shows is decisive for irregular workloads (at the price of added latency
//! for the first parcel in a batch).
//!
//! Batch wire format: repeated `[ len u32 | parcel bytes ]`, delivered under
//! a dedicated completion id and unpacked at the receiver.
//!
//! Flushing is explicit or threshold-driven: a batch flushes when it holds
//! [`crate::RtConfig::coalesce_max`] parcels or would exceed the eager
//! capacity; [`crate::RtNode::flush_parcels`] force-flushes (applications
//! call it before waiting on replies).

use crate::parcel::Parcel;
use crate::{Rank, Result, RtError};

/// One destination's pending batch.
#[derive(Debug, Default)]
pub(crate) struct Batch {
    buf: Vec<u8>,
    count: usize,
}

impl Batch {
    /// Append an encoded parcel.
    pub(crate) fn push(&mut self, enc: &[u8]) {
        self.buf.extend_from_slice(&(enc.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(enc);
        self.count += 1;
    }

    /// Parcels queued.
    pub(crate) fn len(&self) -> usize {
        self.count
    }

    /// Bytes the batch would occupy on the wire.
    pub(crate) fn wire_len(&self) -> usize {
        self.buf.len()
    }

    /// Take the wire bytes, resetting the batch.
    pub(crate) fn take(&mut self) -> Vec<u8> {
        self.count = 0;
        std::mem::take(&mut self.buf)
    }
}

/// Decode a batch back into parcels.
pub(crate) fn unpack(bytes: &[u8]) -> Result<Vec<Parcel>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if pos + 4 > bytes.len() {
            return Err(RtError::BadParcel("truncated batch length"));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if pos + len > bytes.len() {
            return Err(RtError::BadParcel("truncated batch body"));
        }
        out.push(Parcel::decode(&bytes[pos..pos + len])?);
        pos += len;
    }
    Ok(out)
}

/// Destination-indexed batches (one per peer).
#[derive(Debug)]
pub(crate) struct Coalescer {
    batches: Vec<Batch>,
}

impl Coalescer {
    pub(crate) fn new(n: usize) -> Coalescer {
        Coalescer { batches: (0..n).map(|_| Batch::default()).collect() }
    }

    pub(crate) fn batch_mut(&mut self, peer: Rank) -> &mut Batch {
        &mut self.batches[peer]
    }

    /// Take every non-empty batch as `(peer, wire bytes)`.
    pub(crate) fn take_all(&mut self) -> Vec<(Rank, Vec<u8>)> {
        self.batches
            .iter_mut()
            .enumerate()
            .filter(|(_, b)| b.len() > 0)
            .map(|(peer, b)| (peer, b.take()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn batch_roundtrip() {
        let mut b = Batch::default();
        let p1 = Parcel::new(17, &b"alpha"[..]);
        let p2 = Parcel::new(18, &b""[..]);
        let p3 = Parcel {
            action: 19,
            payload: Bytes::from(vec![7u8; 100]),
            cont: Some(crate::lco::LcoRef { rank: 2, id: 9 }),
        };
        for p in [&p1, &p2, &p3] {
            b.push(&p.encode());
        }
        assert_eq!(b.len(), 3);
        let wire = b.take();
        assert_eq!(b.len(), 0);
        let got = unpack(&wire).unwrap();
        assert_eq!(got, vec![p1, p2, p3]);
    }

    #[test]
    fn truncated_batches_rejected() {
        let mut b = Batch::default();
        b.push(&Parcel::new(1, &b"x"[..]).encode());
        let wire = b.take();
        assert!(unpack(&wire[..wire.len() - 1]).is_err());
        assert!(unpack(&wire[..3]).is_err());
        assert!(unpack(&[]).unwrap().is_empty());
    }

    #[test]
    fn coalescer_tracks_per_peer() {
        let mut c = Coalescer::new(3);
        c.batch_mut(0).push(&Parcel::new(1, &b"a"[..]).encode());
        c.batch_mut(2).push(&Parcel::new(2, &b"b"[..]).encode());
        c.batch_mut(2).push(&Parcel::new(3, &b"c"[..]).encode());
        let flushed = c.take_all();
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed[0].0, 0);
        assert_eq!(flushed[1].0, 2);
        assert_eq!(unpack(&flushed[1].1).unwrap().len(), 2);
        assert!(c.take_all().is_empty());
    }
}
