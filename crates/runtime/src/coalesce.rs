//! Parcel coalescing.
//!
//! Fine-grained message-driven applications (GUPS, graph traversal) emit
//! torrents of tiny parcels; per-message injection overhead then dominates.
//! Coalescing buffers parcels per destination and flushes a whole batch
//! through [`photon_core::Photon::send_many`] — every parcel stays its own
//! eager frame (decoded independently at the receiver, no repacking), but
//! the entire batch is composed into one contiguous ring reservation and
//! posted as a **single** doorbell-batched RDMA write. This is the
//! aggregation optimization the HPX/AM++ literature shows is decisive for
//! irregular workloads (at the price of added latency for the first parcel
//! in a batch).
//!
//! Flushing is explicit or threshold-driven: a batch flushes when it holds
//! [`crate::RtConfig::coalesce_max`] parcels or would exceed the eager
//! capacity; [`crate::RtNode::flush_parcels`] force-flushes (applications
//! call it before waiting on replies).

use crate::Rank;
use photon_core::Recycler;

/// One destination's pending batch: encoded parcels, kept separate so the
/// flush can hand them to the batched send API frame-by-frame.
#[derive(Debug, Default)]
pub(crate) struct Batch {
    parcels: Vec<Vec<u8>>,
    bytes: usize,
}

impl Batch {
    /// Append an encoded parcel. The staging vector comes from the
    /// thread-local [`Recycler`] cache; the flush path gives it back after
    /// the send, so a steady-state parcel loop allocates nothing here.
    pub(crate) fn push(&mut self, enc: &[u8]) {
        self.bytes += enc.len();
        let mut v = Recycler::take(enc.len());
        v.extend_from_slice(enc);
        self.parcels.push(v);
    }

    /// Parcels queued.
    pub(crate) fn len(&self) -> usize {
        self.parcels.len()
    }

    /// Total payload bytes queued (flush-threshold accounting; the fabric
    /// adds its own per-frame header on the wire).
    pub(crate) fn wire_len(&self) -> usize {
        self.bytes
    }

    /// Take the queued parcels, resetting the batch.
    pub(crate) fn take(&mut self) -> Vec<Vec<u8>> {
        self.bytes = 0;
        std::mem::take(&mut self.parcels)
    }
}

/// Destination-indexed batches (one per peer).
#[derive(Debug)]
pub(crate) struct Coalescer {
    batches: Vec<Batch>,
}

impl Coalescer {
    pub(crate) fn new(n: usize) -> Coalescer {
        Coalescer { batches: (0..n).map(|_| Batch::default()).collect() }
    }

    pub(crate) fn batch_mut(&mut self, peer: Rank) -> &mut Batch {
        &mut self.batches[peer]
    }

    /// Take every non-empty batch as `(peer, parcels)`.
    pub(crate) fn take_all(&mut self) -> Vec<(Rank, Vec<Vec<u8>>)> {
        self.batches
            .iter_mut()
            .enumerate()
            .filter(|(_, b)| b.len() > 0)
            .map(|(peer, b)| (peer, b.take()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parcel::Parcel;
    use bytes::Bytes;

    #[test]
    fn batch_keeps_parcels_separate() {
        let mut b = Batch::default();
        let p1 = Parcel::new(17, &b"alpha"[..]);
        let p2 = Parcel::new(18, &b""[..]);
        let p3 = Parcel {
            action: 19,
            payload: Bytes::from(vec![7u8; 100]),
            cont: Some(crate::lco::LcoRef { rank: 2, id: 9 }),
        };
        for p in [&p1, &p2, &p3] {
            b.push(&p.encode());
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.wire_len(), [&p1, &p2, &p3].iter().map(|p| p.encode().len()).sum());
        let frames = b.take();
        assert_eq!(b.len(), 0);
        assert_eq!(b.wire_len(), 0);
        // Each frame decodes back to its parcel independently — no
        // batch-level framing to strip.
        let got: Vec<Parcel> = frames.iter().map(|f| Parcel::decode(f).unwrap()).collect();
        assert_eq!(got, vec![p1, p2, p3]);
    }

    #[test]
    fn coalescer_tracks_per_peer() {
        let mut c = Coalescer::new(3);
        c.batch_mut(0).push(&Parcel::new(1, &b"a"[..]).encode());
        c.batch_mut(2).push(&Parcel::new(2, &b"b"[..]).encode());
        c.batch_mut(2).push(&Parcel::new(3, &b"c"[..]).encode());
        let flushed = c.take_all();
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed[0].0, 0);
        assert_eq!(flushed[1].0, 2);
        assert_eq!(flushed[1].1.len(), 2);
        assert!(c.take_all().is_empty());
    }
}
