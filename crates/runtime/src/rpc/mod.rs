//! Remote procedure calls over parcels, with explicit delivery semantics.
//!
//! The parcel/action layer gives fire-and-forget active messages; runtime
//! services (the paper's motivating HPX-5 workloads, and the remote KV
//! service in [`kv`]) need *invocations*: a typed request, a typed reply,
//! and a contract about how many times the handler runs when the network
//! misbehaves. This module adds that contract on top of parcels:
//!
//! * **Typed request/reply** — methods implement [`RpcMethod`] (a name plus
//!   [`wire::Wire`]-serializable request and reply types); correlation IDs
//!   match replies to outstanding calls, so any number of invocations can be
//!   in flight per node.
//! * **Delivery policies** ([`DeliveryPolicy`]):
//!   - `Maybe` — one send, one bounded wait, no retry. Cheapest; the call
//!     may execute zero or one times.
//!   - `AtLeastOnce` — deterministic retry with exponential per-attempt
//!     deadlines, riding the health machine ([`Photon::check_peer`]) between
//!     attempts so partitions heal (or evict) in virtual time. The handler
//!     may execute more than once.
//!   - `AtMostOnce` — `AtLeastOnce` retries plus per-client sequence numbers
//!     and a bounded server-side dedup window ([`dedup::DedupWindow`]) that
//!     **replays the cached reply instead of re-executing** when a retry
//!     arrives for a request that already ran. The handler executes at most
//!     once; a success reply implies exactly once.
//! * **Failure classification** — a call that exhausts its budget resolves
//!   to [`PhotonError::RpcTimeout`] when the server was still believed
//!   reachable (outcome unknown) or [`PhotonError::RpcFailed`] when the
//!   health machine declared it dead or the server returned a verdict
//!   (handler error, unknown method, stale sequence).
//! * **Observability** — a dedicated [`RpcStats`] counter registry per node
//!   and request-latency histograms keyed by method name
//!   ([`photon_core::KeyedLatency`]), exposed via
//!   [`RtNode::rpc_stats`](crate::RtNode::rpc_stats) and
//!   [`RtNode::rpc_latency`](crate::RtNode::rpc_latency).
//!
//! Server handlers run on the node's work-stealing scheduler like any other
//! parcel handler (requests and replies are internal-action parcels, so they
//! share the eager/rendezvous transport, coalescing, and the quiescence
//! accounting of ordinary parcel traffic).
//!
//! [`Photon::check_peer`]: photon_core::Photon::check_peer
//! [`PhotonError::RpcTimeout`]: photon_core::PhotonError::RpcTimeout
//! [`PhotonError::RpcFailed`]: photon_core::PhotonError::RpcFailed

pub mod client;
pub mod dedup;
pub mod kv;
pub mod server;
pub mod wire;

pub use client::{RpcClient, RpcOptions};
pub use dedup::{Admit, DedupWindow};
pub use wire::Wire;

use parking_lot::{Mutex, RwLock};
use photon_core::KeyedLatency;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// How hard the client tries, and what the server promises about handler
/// execution counts. See the module docs for the full contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryPolicy {
    /// One attempt, bounded wait, no retry: zero or one executions.
    Maybe,
    /// Retry until reply or budget exhaustion: one or more executions.
    AtLeastOnce,
    /// Retries plus sequence-numbered dedup: at most one execution, and a
    /// success reply implies exactly one.
    AtMostOnce,
}

impl DeliveryPolicy {
    /// Wire encoding.
    pub fn code(self) -> u8 {
        match self {
            DeliveryPolicy::Maybe => 0,
            DeliveryPolicy::AtLeastOnce => 1,
            DeliveryPolicy::AtMostOnce => 2,
        }
    }

    /// Decode; unknown codes map to `None`.
    pub fn from_code(c: u8) -> Option<DeliveryPolicy> {
        Some(match c {
            0 => DeliveryPolicy::Maybe,
            1 => DeliveryPolicy::AtLeastOnce,
            2 => DeliveryPolicy::AtMostOnce,
            _ => return None,
        })
    }
}

/// A typed remote method: a stable name (hashed into the request envelope;
/// same-binary discipline, like action registration) plus the request and
/// reply types that ride the wire.
pub trait RpcMethod {
    /// Registered method name; must be identical on caller and server.
    const NAME: &'static str;
    /// Request payload type.
    type Req: Wire;
    /// Reply payload type.
    type Rep: Wire;
}

/// RPC-layer configuration (part of [`crate::RtConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcConfig {
    /// Per-client capacity of the server-side at-most-once dedup window:
    /// how many (in-flight + cached-reply) entries are retained per client
    /// before the oldest *completed* entries are evicted. Sizing: must cover
    /// the client's maximum concurrent outstanding at-most-once calls (or
    /// the window rejects admissions as busy) plus enough completed slack
    /// that a retry delayed by a full partition-heal cycle still finds its
    /// cached reply (see DESIGN.md, "RPC and delivery semantics").
    pub dedup_window: usize,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig { dedup_window: 64 }
    }
}

/// FNV-1a 64-bit over a method name: the wire identifier of a method.
pub(crate) fn method_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

photon_core::counter_registry! {
    /// Atomic RPC counters for one node (see [`RpcStats`]). Client-side and
    /// server-side counters share the registry because a node is usually
    /// both (every rank can serve and call).
    registry RpcCounters;
    /// RPC statistics for one node.
    snapshot RpcStats;
    table RPC_COUNTERS;
    counters {
        /// Invocations started on this node (any policy).
        calls,
        /// Request-send attempts (first tries and retries).
        attempts,
        /// Attempts beyond each call's first (`attempts - calls` for a
        /// retry-free workload is 0).
        retries,
        /// Calls resolved by a success reply.
        replies_ok,
        /// Calls resolved by a server-side verdict (handler error, unknown
        /// method, stale sequence).
        replies_err,
        /// Calls resolved as [`photon_core::PhotonError::RpcTimeout`].
        timeouts,
        /// Calls resolved as [`photon_core::PhotonError::RpcFailed`] because
        /// the server was declared dead.
        failed_dead,
        /// Replies that arrived after their call had already resolved
        /// (late duplicates; dropped).
        late_replies,
        /// Requests received by this node's server side.
        srv_requests,
        /// Handler executions (at-most-once dedup hits do not execute).
        srv_executed,
        /// At-most-once retries answered from the dedup cache instead of
        /// re-executing the handler.
        srv_replayed,
        /// At-most-once duplicates that arrived while the original was
        /// still executing (client told to back off and retry).
        srv_dup_inflight,
        /// At-most-once requests rejected because their sequence number
        /// fell below the dedup window (reply evicted long ago).
        srv_stale,
        /// At-most-once admissions rejected because the window was full of
        /// in-flight entries (eviction never removes in-flight work).
        srv_window_full,
        /// Requests naming a method this node never registered.
        srv_unknown_method,
        /// Replies this node failed to send (client dead or partitioned);
        /// the client's retry/timeout machinery owns recovery.
        srv_reply_failures,
        /// Handler executions that panicked; the panic was contained and
        /// converted to an `ST_HANDLER_ERR` reply (the server keeps
        /// serving).
        srv_handler_panics,
        /// At-most-once client identities whose dedup state was dropped
        /// because the health machine declared their rank dead.
        srv_clients_forgotten,
    }
}

/// Type-erased handler: raw request bytes in, `(status, body)` out —
/// exactly the reply tail the wire carries (and the dedup window caches),
/// so decode failures and application errors replay byte-identically to
/// successes.
pub(crate) type ErasedHandler = Arc<dyn Fn(&[u8]) -> (u8, Vec<u8>) + Send + Sync>;

/// One registered method on a node's server side.
pub(crate) struct MethodEntry {
    /// Dense key into the node's [`KeyedLatency`] bank.
    pub(crate) latency_key: usize,
    /// The method's type-erased handler.
    pub(crate) handler: ErasedHandler,
}

/// Per-node RPC state: the server-side method table and dedup window, the
/// client-side correlation table, and the shared observability surfaces.
pub(crate) struct RpcState {
    /// method-name hash → handler entry.
    pub(crate) methods: RwLock<HashMap<u64, MethodEntry>>,
    /// correlation id → reply slot for outstanding calls from this node.
    pub(crate) pending: Mutex<HashMap<u64, Arc<crate::lco::FutureBytes>>>,
    /// Correlation-id allocator (node-local; the envelope also carries the
    /// caller's rank, so ids never collide across nodes).
    pub(crate) next_corr: AtomicU64,
    /// Client-instance allocator for at-most-once client identities.
    pub(crate) next_client: AtomicU64,
    /// The at-most-once dedup window (server side).
    pub(crate) dedup: Mutex<DedupWindow>,
    /// RPC counter registry for this node.
    pub(crate) counters: RpcCounters,
    /// Request latency histograms keyed by method name. Client side records
    /// call round-trips; the same bank also carries per-method server
    /// execution latencies under the `<name>@srv` key.
    pub(crate) latency: KeyedLatency,
}

impl RpcState {
    pub(crate) fn new(cfg: RpcConfig) -> RpcState {
        RpcState {
            methods: RwLock::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            next_corr: AtomicU64::new(1),
            next_client: AtomicU64::new(1),
            dedup: Mutex::new(DedupWindow::new(cfg.dedup_window)),
            counters: RpcCounters::default(),
            latency: KeyedLatency::new(),
        }
    }
}

impl std::fmt::Debug for RpcState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcState")
            .field("methods", &self.methods.read().len())
            .field("pending", &self.pending.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_codes_round_trip() {
        for p in [DeliveryPolicy::Maybe, DeliveryPolicy::AtLeastOnce, DeliveryPolicy::AtMostOnce] {
            assert_eq!(DeliveryPolicy::from_code(p.code()), Some(p));
        }
        assert_eq!(DeliveryPolicy::from_code(9), None);
    }

    #[test]
    fn method_hash_distinguishes_names() {
        assert_ne!(method_hash("kv.get"), method_hash("kv.put"));
        assert_eq!(method_hash("kv.get"), method_hash("kv.get"));
    }
}
