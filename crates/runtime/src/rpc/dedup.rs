//! The at-most-once dedup window: per-client sequence tracking with bounded
//! memory and reply replay.
//!
//! Pure data structure — no locks, no transport — so the exactly-once
//! invariants are property-testable in isolation (see the proptests at the
//! bottom). The server drives it in two steps:
//!
//! 1. [`DedupWindow::admit`] before running a handler. The verdict says
//!    whether to execute, replay a cached reply, tell the client to wait
//!    (original still in flight), reject as stale, or reject as busy.
//! 2. [`DedupWindow::complete`] after the handler ran, caching the encoded
//!    reply so later duplicates replay it byte-for-byte.
//!
//! Memory is bounded per client: at most `cap` entries (in-flight +
//! completed). Eviction only ever removes the *lowest-sequence completed*
//! entry and raises the client's floor past it; in-flight entries are never
//! evicted (an executing handler must be able to record its reply), so a
//! window saturated with in-flight work rejects new admissions as
//! [`Admit::Busy`] instead.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BTreeMap, HashMap};

/// Admission verdict for an at-most-once request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admit {
    /// First sighting: run the handler (an in-flight entry was recorded;
    /// the caller must eventually [`DedupWindow::complete`] it).
    Execute,
    /// Duplicate of a completed request: send these cached reply bytes
    /// (status byte + body) without re-executing.
    Replay(Vec<u8>),
    /// Duplicate of a request whose handler is still running: drop it (or
    /// tell the client to back off); the original will reply.
    InFlight,
    /// The sequence number fell below the window floor: its outcome was
    /// evicted long ago and can be neither re-run (might double-apply) nor
    /// replayed. Terminal for the client.
    Stale,
    /// The client's window is full of in-flight entries; nothing evictable.
    /// Retryable after the in-flight handlers complete.
    Busy,
}

/// What the window remembers about one admitted sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SlotState {
    /// Handler running; reply not yet known.
    InFlight,
    /// Handler done; cached reply bytes (status + body).
    Done(Vec<u8>),
}

/// One client's slice of the window.
#[derive(Debug, Default)]
struct ClientWindow {
    /// Admitted sequence numbers still remembered, ordered for eviction.
    entries: BTreeMap<u64, SlotState>,
    /// Sequence numbers strictly below this are stale: everything below has
    /// been evicted (or was never admitted and now never can be, since a
    /// lower-seq admission after eviction could be a re-execution).
    floor: u64,
}

/// Bounded per-client dedup state for every at-most-once client this server
/// has seen. Keyed by `(client_rank, client_id)` so two client instances on
/// one rank never share sequence spaces.
#[derive(Debug)]
pub struct DedupWindow {
    clients: HashMap<(u32, u64), ClientWindow>,
    cap: usize,
}

impl DedupWindow {
    /// A window retaining at most `cap` entries per client (`cap` is clamped
    /// to at least 1; a zero-capacity window could never execute anything).
    pub fn new(cap: usize) -> DedupWindow {
        DedupWindow { clients: HashMap::new(), cap: cap.max(1) }
    }

    /// Per-client capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Distinct clients currently tracked.
    pub fn clients(&self) -> usize {
        self.clients.len()
    }

    /// Remembered entries for one client (in-flight + completed), for tests
    /// and observability.
    pub fn entries_of(&self, client_rank: u32, client_id: u64) -> usize {
        self.clients.get(&(client_rank, client_id)).map_or(0, |w| w.entries.len())
    }

    /// Admit sequence number `seq` from a client.
    ///
    /// Check order matters: a remembered entry wins over the floor check —
    /// an in-flight or completed entry *at or above* the floor is answered
    /// from the window even if eviction has since raised the floor past
    /// lower neighbours. Only unknown sequence numbers below the floor are
    /// stale (their outcome is unrecoverable).
    pub fn admit(&mut self, client_rank: u32, client_id: u64, seq: u64) -> Admit {
        let w = self.clients.entry((client_rank, client_id)).or_default();
        if let Some(state) = w.entries.get(&seq) {
            return match state {
                SlotState::InFlight => Admit::InFlight,
                SlotState::Done(reply) => Admit::Replay(reply.clone()),
            };
        }
        if seq < w.floor {
            return Admit::Stale;
        }
        if w.entries.len() >= self.cap {
            // Evict the lowest-sequence COMPLETED entry; never in-flight.
            let victim =
                w.entries.iter().find(|(_, st)| matches!(st, SlotState::Done(_))).map(|(&s, _)| s);
            match victim {
                Some(s) => {
                    w.entries.remove(&s);
                    // Everything at or below the victim becomes stale: the
                    // victim's reply is gone, and anything below it either
                    // was evicted earlier or must never execute now.
                    w.floor = w.floor.max(s + 1);
                    // Raising the floor may strand the new seq below it
                    // (only possible when the victim's seq exceeded it).
                    if seq < w.floor {
                        return Admit::Stale;
                    }
                }
                None => return Admit::Busy,
            }
        }
        w.entries.insert(seq, SlotState::InFlight);
        Admit::Execute
    }

    /// Record the handler's reply for an admitted sequence number, flipping
    /// its entry from in-flight to completed. No-op if the entry is unknown
    /// (defensive: cannot happen when `complete` is only called after
    /// [`Admit::Execute`]).
    pub fn complete(&mut self, client_rank: u32, client_id: u64, seq: u64, reply: Vec<u8>) {
        if let MapEntry::Occupied(mut c) = self.clients.entry((client_rank, client_id)) {
            if let Some(state) = c.get_mut().entries.get_mut(&seq) {
                *state = SlotState::Done(reply);
            }
        }
    }

    /// Forget a client entirely (e.g. its rank died). Its sequence space is
    /// gone; if the same identity ever returns, old sequence numbers may
    /// re-execute — which is why client ids are never reused across client
    /// instances.
    pub fn forget_client(&mut self, client_rank: u32, client_id: u64) {
        self.clients.remove(&(client_rank, client_id));
    }

    /// Forget every client identity that called from `client_rank`,
    /// returning how many were dropped. This is the server's dead-peer
    /// path: when the health machine evicts a rank, all of its dedup
    /// windows leak unless reaped — and worse, a restarted rank reusing a
    /// `client_id` would collide with the dead instance's sequence state
    /// (fresh seq 0 admissions answered `Stale` or replayed from stale
    /// caches). Client ids are allocated per node boot, so a rank that
    /// rejoins after this reap starts from a clean window either way.
    pub fn forget_rank(&mut self, client_rank: u32) -> usize {
        let ids: Vec<u64> =
            self.clients.keys().filter(|&&(r, _)| r == client_rank).map(|&(_, id)| id).collect();
        for id in &ids {
            self.forget_client(client_rank, *id);
        }
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sighting_executes_then_replays() {
        let mut w = DedupWindow::new(4);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute);
        assert_eq!(w.admit(0, 1, 0), Admit::InFlight);
        w.complete(0, 1, 0, vec![0, 42]);
        assert_eq!(w.admit(0, 1, 0), Admit::Replay(vec![0, 42]));
        assert_eq!(w.admit(0, 1, 0), Admit::Replay(vec![0, 42]));
        assert_eq!(w.entries_of(0, 1), 1);
    }

    #[test]
    fn clients_have_independent_sequence_spaces() {
        let mut w = DedupWindow::new(4);
        assert_eq!(w.admit(0, 1, 5), Admit::Execute);
        assert_eq!(w.admit(0, 2, 5), Admit::Execute);
        assert_eq!(w.admit(1, 1, 5), Admit::Execute);
        assert_eq!(w.clients(), 3);
    }

    #[test]
    fn eviction_prefers_lowest_done_and_raises_floor() {
        let mut w = DedupWindow::new(2);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute);
        w.complete(0, 1, 0, vec![0]);
        assert_eq!(w.admit(0, 1, 1), Admit::Execute);
        w.complete(0, 1, 1, vec![1]);
        // Window full: admitting seq 2 evicts seq 0 (lowest done).
        assert_eq!(w.admit(0, 1, 2), Admit::Execute);
        assert_eq!(w.admit(0, 1, 0), Admit::Stale, "evicted seq is stale");
        assert_eq!(w.admit(0, 1, 1), Admit::Replay(vec![1]), "survivor still replays");
    }

    #[test]
    fn window_full_of_inflight_is_busy_never_evicts() {
        let mut w = DedupWindow::new(2);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute);
        assert_eq!(w.admit(0, 1, 1), Admit::Execute);
        // Both in flight: seq 2 must NOT evict either.
        assert_eq!(w.admit(0, 1, 2), Admit::Busy);
        assert_eq!(w.admit(0, 1, 0), Admit::InFlight);
        assert_eq!(w.admit(0, 1, 1), Admit::InFlight);
        // One completes; now there is an evictable victim.
        w.complete(0, 1, 0, vec![9]);
        assert_eq!(w.admit(0, 1, 2), Admit::Execute);
        assert_eq!(w.admit(0, 1, 1), Admit::InFlight, "in-flight survived eviction");
    }

    #[test]
    fn inflight_below_raised_floor_still_answers_inflight() {
        // An in-flight entry must win over the floor check even after
        // eviction raised the floor past its sequence number.
        let mut w = DedupWindow::new(2);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute); // in flight
        assert_eq!(w.admit(0, 1, 5), Admit::Execute);
        w.complete(0, 1, 5, vec![5]);
        // Full; admitting 6 evicts seq 5 (the only Done), floor -> 6.
        assert_eq!(w.admit(0, 1, 6), Admit::Execute);
        // Seq 0 sits below the floor but is still remembered in flight.
        assert_eq!(w.admit(0, 1, 0), Admit::InFlight);
        w.complete(0, 1, 0, vec![0]);
        assert_eq!(w.admit(0, 1, 0), Admit::Replay(vec![0]));
    }

    #[test]
    fn eviction_can_strand_the_new_seq() {
        let mut w = DedupWindow::new(1);
        assert_eq!(w.admit(0, 1, 10), Admit::Execute);
        w.complete(0, 1, 10, vec![1]);
        // Admitting seq 3 evicts seq 10, raising the floor to 11 — which
        // strands seq 3 itself: it must come back Stale, not execute below
        // an already-evicted neighbour.
        assert_eq!(w.admit(0, 1, 3), Admit::Stale);
        assert_eq!(w.entries_of(0, 1), 0);
        // Higher sequence numbers proceed normally.
        assert_eq!(w.admit(0, 1, 11), Admit::Execute);
    }

    #[test]
    fn forget_client_drops_state() {
        let mut w = DedupWindow::new(4);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute);
        w.complete(0, 1, 0, vec![1]);
        w.forget_client(0, 1);
        assert_eq!(w.clients(), 0);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute, "fresh identity starts clean");
    }

    #[test]
    fn forget_rank_reaps_every_id_of_that_rank_only() {
        let mut w = DedupWindow::new(4);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute);
        assert_eq!(w.admit(0, 2, 0), Admit::Execute);
        assert_eq!(w.admit(1, 1, 0), Admit::Execute);
        assert_eq!(w.forget_rank(0), 2, "both ids on rank 0 reaped");
        assert_eq!(w.clients(), 1, "rank 1's client survives");
        assert_eq!(w.admit(1, 1, 0), Admit::InFlight, "survivor state intact");
        assert_eq!(w.admit(0, 1, 0), Admit::Execute, "reaped identity starts clean");
        assert_eq!(w.forget_rank(5), 0, "unknown rank reaps nothing");
    }

    /// The satellite interleaving, pinned deterministically: eviction
    /// raises client A's floor past a sequence number that client B has in
    /// flight; B's window must be completely unperturbed (floors, entries
    /// and verdicts are per-client).
    #[test]
    fn eviction_raising_one_clients_floor_never_perturbs_another() {
        let mut w = DedupWindow::new(2);
        // B (same rank, different id) admits seq 0; handler still running.
        assert_eq!(w.admit(0, 2, 0), Admit::Execute);
        // A completes seqs 5 and 6, then admits 7: the full window evicts
        // seq 5 and raises A's floor to 6 — past B's in-flight seq 0.
        assert_eq!(w.admit(0, 1, 5), Admit::Execute);
        w.complete(0, 1, 5, vec![5]);
        assert_eq!(w.admit(0, 1, 6), Admit::Execute);
        w.complete(0, 1, 6, vec![6]);
        assert_eq!(w.admit(0, 1, 7), Admit::Execute);
        assert_eq!(w.admit(0, 1, 5), Admit::Stale, "A's own floor did rise");
        // B's in-flight admit sits below A's floor yet stays answerable...
        assert_eq!(w.admit(0, 2, 0), Admit::InFlight);
        w.complete(0, 2, 0, vec![0, 42]);
        assert_eq!(w.admit(0, 2, 0), Admit::Replay(vec![0, 42]));
        // ...and B's floor never moved: a fresh low sequence still runs.
        assert_eq!(w.admit(0, 2, 1), Admit::Execute);
        // Same id on a different rank is yet another independent client.
        assert_eq!(w.admit(1, 1, 5), Admit::Execute);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut w = DedupWindow::new(0);
        assert_eq!(w.capacity(), 1);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute);
    }

    mod props {
        //! Model-based property tests: drive random interleavings of
        //! duplicated, reordered and gapped admissions (plus out-of-order
        //! completions) against a reference model, and check the at-most-once
        //! core on every step. Failing seeds persist to
        //! `proptest-regressions/crates__runtime__src__rpc__dedup.txt` and
        //! replay first on every run.

        use super::*;
        use proptest::prelude::*;
        use std::collections::{BTreeSet, HashMap as Map};

        /// The canonical reply bytes for `seq` (so replays are checkable).
        fn reply_of(seq: u64) -> Vec<u8> {
            vec![0, seq as u8, 0xAB]
        }

        /// Interpret one step: `admit` verdicts are checked against the
        /// model; `complete` flips the lowest in-flight entry.
        fn check_interleaving(cap: usize, steps: &[(u8, u64)]) -> Result<(), TestCaseError> {
            let mut w = DedupWindow::new(cap);
            let mut executed = BTreeSet::new(); // ever got Execute
            let mut inflight = BTreeSet::new(); // Execute without complete yet
            let mut completed: Map<u64, Vec<u8>> = Map::new();
            let mut staled = BTreeSet::new(); // ever got Stale
            for &(kind, seq) in steps {
                if kind % 3 == 1 {
                    // Complete the lowest in-flight admission (handlers
                    // finish in any order relative to new admissions).
                    if let Some(&s) = inflight.iter().next() {
                        w.complete(7, 3, s, reply_of(s));
                        inflight.remove(&s);
                        completed.insert(s, reply_of(s));
                    }
                    continue;
                }
                match w.admit(7, 3, seq) {
                    Admit::Execute => {
                        // THE at-most-once property: no sequence number ever
                        // executes twice, and a staled one never executes.
                        prop_assert!(
                            !executed.contains(&seq),
                            "seq {seq} re-admitted as Execute (double execution)"
                        );
                        prop_assert!(
                            !staled.contains(&seq),
                            "seq {seq} executed after being declared stale"
                        );
                        executed.insert(seq);
                        inflight.insert(seq);
                    }
                    Admit::Replay(r) => {
                        prop_assert_eq!(
                            Some(&r),
                            completed.get(&seq),
                            "replay must be byte-identical to the recorded reply"
                        );
                    }
                    Admit::InFlight => {
                        prop_assert!(
                            inflight.contains(&seq),
                            "InFlight verdict for seq {seq} with no handler running"
                        );
                    }
                    Admit::Stale => {
                        // In-flight entries are never evicted, so a stale
                        // verdict can never hit one.
                        prop_assert!(
                            !inflight.contains(&seq),
                            "seq {seq} stale while its handler is in flight"
                        );
                        staled.insert(seq);
                    }
                    Admit::Busy => {
                        prop_assert!(
                            inflight.len() >= cap.max(1),
                            "Busy with only {} in-flight of cap {}",
                            inflight.len(),
                            cap
                        );
                    }
                }
                // Memory bound holds after every admission.
                prop_assert!(w.entries_of(7, 3) <= cap.max(1), "window exceeded its capacity");
                // Every in-flight admission stays answerable: none may have
                // been evicted by whatever the step above did.
                for &s in &inflight {
                    prop_assert_eq!(
                        w.admit(7, 3, s),
                        Admit::InFlight,
                        "in-flight seq {} was evicted",
                        s
                    );
                }
            }
            Ok(())
        }

        /// Per-client reference model for the multi-client property.
        #[derive(Default)]
        struct ClientModel {
            executed: BTreeSet<u64>,
            inflight: BTreeSet<u64>,
            completed: Map<u64, Vec<u8>>,
            staled: BTreeSet<u64>,
        }

        /// The clients of the cross-client interleaving: two ids sharing a
        /// rank plus one id reused on another rank — the three ways two
        /// windows can be "adjacent" without being the same window.
        const CLIENTS: [(u32, u64); 3] = [(7, 3), (7, 4), (8, 3)];

        /// Drive a random interleaving across several clients through ONE
        /// window and check that each client's at-most-once core holds as if
        /// it were alone — in particular that eviction raising one client's
        /// floor past another client's in-flight or completed sequence
        /// numbers never perturbs them (the satellite interleaving, as a
        /// property).
        fn check_cross_client(cap: usize, steps: &[(u8, u8, u64)]) -> Result<(), TestCaseError> {
            let mut w = DedupWindow::new(cap);
            let mut models: Map<(u32, u64), ClientModel> = Map::new();
            for &(who, kind, seq) in steps {
                let (rank, id) = CLIENTS[who as usize % CLIENTS.len()];
                let m = models.entry((rank, id)).or_default();
                if kind % 3 == 1 {
                    if let Some(&s) = m.inflight.iter().next() {
                        w.complete(rank, id, s, reply_of(s));
                        m.inflight.remove(&s);
                        m.completed.insert(s, reply_of(s));
                    }
                } else {
                    match w.admit(rank, id, seq) {
                        Admit::Execute => {
                            prop_assert!(
                                !m.executed.contains(&seq),
                                "client {rank}/{id} seq {seq} double-executed"
                            );
                            prop_assert!(
                                !m.staled.contains(&seq),
                                "client {rank}/{id} seq {seq} executed after stale"
                            );
                            m.executed.insert(seq);
                            m.inflight.insert(seq);
                        }
                        Admit::Replay(r) => {
                            prop_assert_eq!(
                                Some(&r),
                                m.completed.get(&seq),
                                "client {}/{} replay mismatch",
                                rank,
                                id
                            );
                        }
                        Admit::InFlight => {
                            prop_assert!(
                                m.inflight.contains(&seq),
                                "client {rank}/{id} phantom InFlight for seq {seq}"
                            );
                        }
                        Admit::Stale => {
                            prop_assert!(
                                !m.inflight.contains(&seq),
                                "client {rank}/{id} seq {seq} stale while in flight"
                            );
                            m.staled.insert(seq);
                        }
                        Admit::Busy => {
                            prop_assert!(
                                m.inflight.len() >= cap.max(1),
                                "client {}/{} Busy with {} in-flight of cap {}",
                                rank,
                                id,
                                m.inflight.len(),
                                cap
                            );
                        }
                    }
                }
                // Cross-client independence, checked against EVERY client
                // after EVERY step: whatever this step evicted or staled,
                // other clients' in-flight work stays answerable, their
                // cached replies stay replayable, and their memory bound
                // holds. A shared floor or shared eviction scan would fail
                // here.
                for (&(r, i), m) in &models {
                    prop_assert!(
                        w.entries_of(r, i) <= cap.max(1),
                        "client {}/{} exceeded its per-client capacity",
                        r,
                        i
                    );
                    for &s in &m.inflight {
                        prop_assert_eq!(
                            w.admit(r, i, s),
                            Admit::InFlight,
                            "client {}/{} in-flight seq {} perturbed by another client",
                            r,
                            i,
                            s
                        );
                    }
                }
            }
            Ok(())
        }

        proptest! {
            #[test]
            fn interleavings_never_double_execute(
                cap in 1usize..5,
                steps in proptest::collection::vec((any::<u8>(), 0u64..12), 1..96),
            ) {
                check_interleaving(cap, &steps)?;
            }

            /// Same property under a sequence space much wider than the
            /// window, so eviction, floor-raising and stranded admissions
            /// dominate the stream.
            #[test]
            fn gapped_sequences_respect_the_floor(
                cap in 1usize..3,
                steps in proptest::collection::vec((any::<u8>(), 0u64..64), 1..96),
            ) {
                check_interleaving(cap, &steps)?;
            }

            /// Cross-client independence under eviction pressure: tiny
            /// windows and a wide sequence space make floor-raising constant,
            /// so interleavings where one client's eviction overlaps another
            /// client's in-flight admission are the common case, not the
            /// corner.
            #[test]
            fn client_windows_stay_independent_under_eviction(
                cap in 1usize..3,
                steps in proptest::collection::vec(
                    (any::<u8>(), any::<u8>(), 0u64..24), 1..96),
            ) {
                check_cross_client(cap, &steps)?;
            }
        }
    }
}
