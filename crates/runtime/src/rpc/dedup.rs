//! The at-most-once dedup window: per-client sequence tracking with bounded
//! memory and reply replay.
//!
//! Pure data structure — no locks, no transport — so the exactly-once
//! invariants are property-testable in isolation (see the proptests at the
//! bottom). The server drives it in two steps:
//!
//! 1. [`DedupWindow::admit`] before running a handler. The verdict says
//!    whether to execute, replay a cached reply, tell the client to wait
//!    (original still in flight), reject as stale, or reject as busy.
//! 2. [`DedupWindow::complete`] after the handler ran, caching the encoded
//!    reply so later duplicates replay it byte-for-byte.
//!
//! Memory is bounded per client: at most `cap` entries (in-flight +
//! completed). Eviction only ever removes the *lowest-sequence completed*
//! entry and raises the client's floor past it; in-flight entries are never
//! evicted (an executing handler must be able to record its reply), so a
//! window saturated with in-flight work rejects new admissions as
//! [`Admit::Busy`] instead.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BTreeMap, HashMap};

/// Admission verdict for an at-most-once request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admit {
    /// First sighting: run the handler (an in-flight entry was recorded;
    /// the caller must eventually [`DedupWindow::complete`] it).
    Execute,
    /// Duplicate of a completed request: send these cached reply bytes
    /// (status byte + body) without re-executing.
    Replay(Vec<u8>),
    /// Duplicate of a request whose handler is still running: drop it (or
    /// tell the client to back off); the original will reply.
    InFlight,
    /// The sequence number fell below the window floor: its outcome was
    /// evicted long ago and can be neither re-run (might double-apply) nor
    /// replayed. Terminal for the client.
    Stale,
    /// The client's window is full of in-flight entries; nothing evictable.
    /// Retryable after the in-flight handlers complete.
    Busy,
}

/// What the window remembers about one admitted sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SlotState {
    /// Handler running; reply not yet known.
    InFlight,
    /// Handler done; cached reply bytes (status + body).
    Done(Vec<u8>),
}

/// One client's slice of the window.
#[derive(Debug, Default)]
struct ClientWindow {
    /// Admitted sequence numbers still remembered, ordered for eviction.
    entries: BTreeMap<u64, SlotState>,
    /// Sequence numbers strictly below this are stale: everything below has
    /// been evicted (or was never admitted and now never can be, since a
    /// lower-seq admission after eviction could be a re-execution).
    floor: u64,
}

/// Bounded per-client dedup state for every at-most-once client this server
/// has seen. Keyed by `(client_rank, client_id)` so two client instances on
/// one rank never share sequence spaces.
#[derive(Debug)]
pub struct DedupWindow {
    clients: HashMap<(u32, u64), ClientWindow>,
    cap: usize,
}

impl DedupWindow {
    /// A window retaining at most `cap` entries per client (`cap` is clamped
    /// to at least 1; a zero-capacity window could never execute anything).
    pub fn new(cap: usize) -> DedupWindow {
        DedupWindow { clients: HashMap::new(), cap: cap.max(1) }
    }

    /// Per-client capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Distinct clients currently tracked.
    pub fn clients(&self) -> usize {
        self.clients.len()
    }

    /// Remembered entries for one client (in-flight + completed), for tests
    /// and observability.
    pub fn entries_of(&self, client_rank: u32, client_id: u64) -> usize {
        self.clients.get(&(client_rank, client_id)).map_or(0, |w| w.entries.len())
    }

    /// Admit sequence number `seq` from a client.
    ///
    /// Check order matters: a remembered entry wins over the floor check —
    /// an in-flight or completed entry *at or above* the floor is answered
    /// from the window even if eviction has since raised the floor past
    /// lower neighbours. Only unknown sequence numbers below the floor are
    /// stale (their outcome is unrecoverable).
    pub fn admit(&mut self, client_rank: u32, client_id: u64, seq: u64) -> Admit {
        let w = self.clients.entry((client_rank, client_id)).or_default();
        if let Some(state) = w.entries.get(&seq) {
            return match state {
                SlotState::InFlight => Admit::InFlight,
                SlotState::Done(reply) => Admit::Replay(reply.clone()),
            };
        }
        if seq < w.floor {
            return Admit::Stale;
        }
        if w.entries.len() >= self.cap {
            // Evict the lowest-sequence COMPLETED entry; never in-flight.
            let victim =
                w.entries.iter().find(|(_, st)| matches!(st, SlotState::Done(_))).map(|(&s, _)| s);
            match victim {
                Some(s) => {
                    w.entries.remove(&s);
                    // Everything at or below the victim becomes stale: the
                    // victim's reply is gone, and anything below it either
                    // was evicted earlier or must never execute now.
                    w.floor = w.floor.max(s + 1);
                    // Raising the floor may strand the new seq below it
                    // (only possible when the victim's seq exceeded it).
                    if seq < w.floor {
                        return Admit::Stale;
                    }
                }
                None => return Admit::Busy,
            }
        }
        w.entries.insert(seq, SlotState::InFlight);
        Admit::Execute
    }

    /// Record the handler's reply for an admitted sequence number, flipping
    /// its entry from in-flight to completed. No-op if the entry is unknown
    /// (defensive: cannot happen when `complete` is only called after
    /// [`Admit::Execute`]).
    pub fn complete(&mut self, client_rank: u32, client_id: u64, seq: u64, reply: Vec<u8>) {
        if let MapEntry::Occupied(mut c) = self.clients.entry((client_rank, client_id)) {
            if let Some(state) = c.get_mut().entries.get_mut(&seq) {
                *state = SlotState::Done(reply);
            }
        }
    }

    /// Forget a client entirely (e.g. its rank died). Its sequence space is
    /// gone; if the same identity ever returns, old sequence numbers may
    /// re-execute — which is why client ids are never reused across client
    /// instances.
    pub fn forget_client(&mut self, client_rank: u32, client_id: u64) {
        self.clients.remove(&(client_rank, client_id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sighting_executes_then_replays() {
        let mut w = DedupWindow::new(4);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute);
        assert_eq!(w.admit(0, 1, 0), Admit::InFlight);
        w.complete(0, 1, 0, vec![0, 42]);
        assert_eq!(w.admit(0, 1, 0), Admit::Replay(vec![0, 42]));
        assert_eq!(w.admit(0, 1, 0), Admit::Replay(vec![0, 42]));
        assert_eq!(w.entries_of(0, 1), 1);
    }

    #[test]
    fn clients_have_independent_sequence_spaces() {
        let mut w = DedupWindow::new(4);
        assert_eq!(w.admit(0, 1, 5), Admit::Execute);
        assert_eq!(w.admit(0, 2, 5), Admit::Execute);
        assert_eq!(w.admit(1, 1, 5), Admit::Execute);
        assert_eq!(w.clients(), 3);
    }

    #[test]
    fn eviction_prefers_lowest_done_and_raises_floor() {
        let mut w = DedupWindow::new(2);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute);
        w.complete(0, 1, 0, vec![0]);
        assert_eq!(w.admit(0, 1, 1), Admit::Execute);
        w.complete(0, 1, 1, vec![1]);
        // Window full: admitting seq 2 evicts seq 0 (lowest done).
        assert_eq!(w.admit(0, 1, 2), Admit::Execute);
        assert_eq!(w.admit(0, 1, 0), Admit::Stale, "evicted seq is stale");
        assert_eq!(w.admit(0, 1, 1), Admit::Replay(vec![1]), "survivor still replays");
    }

    #[test]
    fn window_full_of_inflight_is_busy_never_evicts() {
        let mut w = DedupWindow::new(2);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute);
        assert_eq!(w.admit(0, 1, 1), Admit::Execute);
        // Both in flight: seq 2 must NOT evict either.
        assert_eq!(w.admit(0, 1, 2), Admit::Busy);
        assert_eq!(w.admit(0, 1, 0), Admit::InFlight);
        assert_eq!(w.admit(0, 1, 1), Admit::InFlight);
        // One completes; now there is an evictable victim.
        w.complete(0, 1, 0, vec![9]);
        assert_eq!(w.admit(0, 1, 2), Admit::Execute);
        assert_eq!(w.admit(0, 1, 1), Admit::InFlight, "in-flight survived eviction");
    }

    #[test]
    fn inflight_below_raised_floor_still_answers_inflight() {
        // An in-flight entry must win over the floor check even after
        // eviction raised the floor past its sequence number.
        let mut w = DedupWindow::new(2);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute); // in flight
        assert_eq!(w.admit(0, 1, 5), Admit::Execute);
        w.complete(0, 1, 5, vec![5]);
        // Full; admitting 6 evicts seq 5 (the only Done), floor -> 6.
        assert_eq!(w.admit(0, 1, 6), Admit::Execute);
        // Seq 0 sits below the floor but is still remembered in flight.
        assert_eq!(w.admit(0, 1, 0), Admit::InFlight);
        w.complete(0, 1, 0, vec![0]);
        assert_eq!(w.admit(0, 1, 0), Admit::Replay(vec![0]));
    }

    #[test]
    fn eviction_can_strand_the_new_seq() {
        let mut w = DedupWindow::new(1);
        assert_eq!(w.admit(0, 1, 10), Admit::Execute);
        w.complete(0, 1, 10, vec![1]);
        // Admitting seq 3 evicts seq 10, raising the floor to 11 — which
        // strands seq 3 itself: it must come back Stale, not execute below
        // an already-evicted neighbour.
        assert_eq!(w.admit(0, 1, 3), Admit::Stale);
        assert_eq!(w.entries_of(0, 1), 0);
        // Higher sequence numbers proceed normally.
        assert_eq!(w.admit(0, 1, 11), Admit::Execute);
    }

    #[test]
    fn forget_client_drops_state() {
        let mut w = DedupWindow::new(4);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute);
        w.complete(0, 1, 0, vec![1]);
        w.forget_client(0, 1);
        assert_eq!(w.clients(), 0);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute, "fresh identity starts clean");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut w = DedupWindow::new(0);
        assert_eq!(w.capacity(), 1);
        assert_eq!(w.admit(0, 1, 0), Admit::Execute);
    }

    mod props {
        //! Model-based property tests: drive random interleavings of
        //! duplicated, reordered and gapped admissions (plus out-of-order
        //! completions) against a reference model, and check the at-most-once
        //! core on every step. Failing seeds persist to
        //! `proptest-regressions/crates__runtime__src__rpc__dedup.txt` and
        //! replay first on every run.

        use super::*;
        use proptest::prelude::*;
        use std::collections::{BTreeSet, HashMap as Map};

        /// The canonical reply bytes for `seq` (so replays are checkable).
        fn reply_of(seq: u64) -> Vec<u8> {
            vec![0, seq as u8, 0xAB]
        }

        /// Interpret one step: `admit` verdicts are checked against the
        /// model; `complete` flips the lowest in-flight entry.
        fn check_interleaving(cap: usize, steps: &[(u8, u64)]) -> Result<(), TestCaseError> {
            let mut w = DedupWindow::new(cap);
            let mut executed = BTreeSet::new(); // ever got Execute
            let mut inflight = BTreeSet::new(); // Execute without complete yet
            let mut completed: Map<u64, Vec<u8>> = Map::new();
            let mut staled = BTreeSet::new(); // ever got Stale
            for &(kind, seq) in steps {
                if kind % 3 == 1 {
                    // Complete the lowest in-flight admission (handlers
                    // finish in any order relative to new admissions).
                    if let Some(&s) = inflight.iter().next() {
                        w.complete(7, 3, s, reply_of(s));
                        inflight.remove(&s);
                        completed.insert(s, reply_of(s));
                    }
                    continue;
                }
                match w.admit(7, 3, seq) {
                    Admit::Execute => {
                        // THE at-most-once property: no sequence number ever
                        // executes twice, and a staled one never executes.
                        prop_assert!(
                            !executed.contains(&seq),
                            "seq {seq} re-admitted as Execute (double execution)"
                        );
                        prop_assert!(
                            !staled.contains(&seq),
                            "seq {seq} executed after being declared stale"
                        );
                        executed.insert(seq);
                        inflight.insert(seq);
                    }
                    Admit::Replay(r) => {
                        prop_assert_eq!(
                            Some(&r),
                            completed.get(&seq),
                            "replay must be byte-identical to the recorded reply"
                        );
                    }
                    Admit::InFlight => {
                        prop_assert!(
                            inflight.contains(&seq),
                            "InFlight verdict for seq {seq} with no handler running"
                        );
                    }
                    Admit::Stale => {
                        // In-flight entries are never evicted, so a stale
                        // verdict can never hit one.
                        prop_assert!(
                            !inflight.contains(&seq),
                            "seq {seq} stale while its handler is in flight"
                        );
                        staled.insert(seq);
                    }
                    Admit::Busy => {
                        prop_assert!(
                            inflight.len() >= cap.max(1),
                            "Busy with only {} in-flight of cap {}",
                            inflight.len(),
                            cap
                        );
                    }
                }
                // Memory bound holds after every admission.
                prop_assert!(w.entries_of(7, 3) <= cap.max(1), "window exceeded its capacity");
                // Every in-flight admission stays answerable: none may have
                // been evicted by whatever the step above did.
                for &s in &inflight {
                    prop_assert_eq!(
                        w.admit(7, 3, s),
                        Admit::InFlight,
                        "in-flight seq {} was evicted",
                        s
                    );
                }
            }
            Ok(())
        }

        proptest! {
            #[test]
            fn interleavings_never_double_execute(
                cap in 1usize..5,
                steps in proptest::collection::vec((any::<u8>(), 0u64..12), 1..96),
            ) {
                check_interleaving(cap, &steps)?;
            }

            /// Same property under a sequence space much wider than the
            /// window, so eviction, floor-raising and stranded admissions
            /// dominate the stream.
            #[test]
            fn gapped_sequences_respect_the_floor(
                cap in 1usize..3,
                steps in proptest::collection::vec((any::<u8>(), 0u64..64), 1..96),
            ) {
                check_interleaving(cap, &steps)?;
            }
        }
    }
}
