//! Server side: method registration and request dispatch.
//!
//! Requests arrive as internal-action parcels, so handlers already run on
//! the node's work-stealing scheduler (the progress thread submits the
//! parcel, a worker executes it) — RPC needs no scheduler machinery of its
//! own. Dispatch is: decode envelope → look up method → (at-most-once only)
//! consult the dedup window → run the handler → reply with a parcel back to
//! the caller's rank.
//!
//! Reply sends can fail (caller died or partitioned mid-call). The server
//! treats that as the caller's problem: the failure is counted
//! (`srv_reply_failures`) and the reply dropped — for at-most-once the
//! cached copy in the dedup window still satisfies a retry after a heal.

use super::wire::{
    decode_request, encode_reply, ST_BAD_REQUEST, ST_BUSY, ST_HANDLER_ERR, ST_NO_SUCH_METHOD,
    ST_OK, ST_STALE,
};
use super::{
    method_hash, Admit, DeliveryPolicy, ErasedHandler, MethodEntry, RpcCounters, RpcMethod, Wire,
};
use crate::runtime::{RtNode, ACTION_RPC_REP};
use std::sync::Arc;

impl RtNode {
    /// Register a handler for method `M` on this node. The handler receives
    /// the decoded request and returns the reply or an application error
    /// string (delivered to the caller as
    /// [`PhotonError::RpcFailed`](photon_core::PhotonError::RpcFailed)).
    ///
    /// Same-binary discipline applies: register before traffic flows, and
    /// re-registering a name replaces its handler. Handlers run on scheduler
    /// workers and may themselves send parcels or RPCs (to *other* ranks;
    /// calling back into a busy self risks worker exhaustion).
    pub fn rpc_serve<M: RpcMethod>(
        &self,
        handler: impl Fn(M::Req) -> Result<M::Rep, String> + Send + Sync + 'static,
    ) {
        let srv_key = self.rpc().latency.register(&format!("{}@srv", M::NAME));
        let erased = Arc::new(move |bytes: &[u8]| match M::Req::from_bytes(bytes) {
            Ok(req) => match handler(req) {
                Ok(rep) => (ST_OK, rep.to_bytes()),
                Err(msg) => (ST_HANDLER_ERR, msg.into_bytes()),
            },
            Err(_) => (ST_BAD_REQUEST, Vec::new()),
        });
        self.rpc()
            .methods
            .write()
            .insert(method_hash(M::NAME), MethodEntry { latency_key: srv_key, handler: erased });
    }
}

/// Execute one request parcel (already on a scheduler worker).
pub(crate) fn handle_request(node: &Arc<RtNode>, payload: &[u8]) {
    let rpc = node.rpc();
    RpcCounters::bump(&rpc.counters.srv_requests);
    let Ok(env) = decode_request(payload) else {
        // No decodable correlation id: nowhere to send a verdict. The
        // caller's timeout owns this (same fate as a lost parcel).
        return;
    };
    let reply_to = env.client_rank as usize;

    // Resolve the method. The handler Arc is cloned out so the registry
    // lock is never held across handler execution.
    let entry = {
        let methods = rpc.methods.read();
        methods.get(&env.method).map(|m| (m.latency_key, Arc::clone(&m.handler)))
    };
    let Some((latency_key, handler)) = entry else {
        RpcCounters::bump(&rpc.counters.srv_unknown_method);
        send_reply(node, reply_to, env.corr, ST_NO_SUCH_METHOD, &[]);
        return;
    };

    if env.policy == DeliveryPolicy::AtMostOnce.code() {
        // Admission under the window lock, execution outside it: handlers
        // may be slow or themselves block, and duplicates arriving mid-run
        // must still get their InFlight verdict.
        let verdict = rpc.dedup.lock().admit(env.client_rank, env.client_id, env.seq);
        match verdict {
            Admit::Execute => {
                let (status, body) = timed_execute(node, latency_key, &handler, env.req);
                // Cache exactly the (status, body) tail the wire carries so
                // a replayed reply is byte-identical to this one.
                let mut cached = Vec::with_capacity(1 + body.len());
                cached.push(status);
                cached.extend_from_slice(&body);
                rpc.dedup.lock().complete(env.client_rank, env.client_id, env.seq, cached);
                send_reply(node, reply_to, env.corr, status, &body);
            }
            Admit::Replay(cached) => {
                RpcCounters::bump(&rpc.counters.srv_replayed);
                let (status, body) =
                    cached.split_first().map_or((ST_OK, &[][..]), |(s, b)| (*s, b));
                send_reply(node, reply_to, env.corr, status, body);
            }
            Admit::InFlight => {
                // The original execution will reply; answering here would
                // race it. The client's retry timer covers a lost original.
                RpcCounters::bump(&rpc.counters.srv_dup_inflight);
            }
            Admit::Stale => {
                RpcCounters::bump(&rpc.counters.srv_stale);
                send_reply(node, reply_to, env.corr, ST_STALE, &[]);
            }
            Admit::Busy => {
                RpcCounters::bump(&rpc.counters.srv_window_full);
                send_reply(node, reply_to, env.corr, ST_BUSY, &[]);
            }
        }
    } else {
        // Maybe / at-least-once: every delivery executes.
        let (status, body) = timed_execute(node, latency_key, &handler, env.req);
        send_reply(node, reply_to, env.corr, status, &body);
    }
}

/// Run the handler, recording its execution latency under `<method>@srv`.
fn timed_execute(
    node: &Arc<RtNode>,
    latency_key: usize,
    handler: &ErasedHandler,
    req: &[u8],
) -> (u8, Vec<u8>) {
    let rpc = node.rpc();
    RpcCounters::bump(&rpc.counters.srv_executed);
    let start = std::time::Instant::now();
    let out = handler(req);
    rpc.latency.record(latency_key, start.elapsed().as_nanos() as u64);
    out
}

fn send_reply(node: &Arc<RtNode>, reply_to: usize, corr: u64, status: u8, body: &[u8]) {
    let enc = encode_reply(corr, status, body);
    if node.send_parcel(reply_to, ACTION_RPC_REP, &enc).is_err() {
        RpcCounters::bump(&node.rpc().counters.srv_reply_failures);
    }
}
