//! Server side: method registration and request dispatch.
//!
//! Requests arrive as internal-action parcels, so handlers already run on
//! the node's work-stealing scheduler (the progress thread submits the
//! parcel, a worker executes it) — RPC needs no scheduler machinery of its
//! own. Dispatch is: decode envelope → look up method → (at-most-once only)
//! consult the dedup window → run the handler → reply with a parcel back to
//! the caller's rank.
//!
//! Reply sends can fail (caller died or partitioned mid-call). The server
//! treats that as the caller's problem: the failure is counted
//! (`srv_reply_failures`) and the reply dropped — for at-most-once the
//! cached copy in the dedup window still satisfies a retry after a heal.

use super::wire::{
    decode_request, encode_reply, ST_BAD_REQUEST, ST_BUSY, ST_HANDLER_ERR, ST_NO_SUCH_METHOD,
    ST_OK, ST_STALE,
};
use super::{
    method_hash, Admit, DeliveryPolicy, ErasedHandler, MethodEntry, RpcCounters, RpcMethod, Wire,
};
use crate::runtime::{RtNode, ACTION_RPC_REP};
use std::sync::Arc;

impl RtNode {
    /// Register a handler for method `M` on this node. The handler receives
    /// the decoded request and returns the reply or an application error
    /// string (delivered to the caller as
    /// [`PhotonError::RpcFailed`](photon_core::PhotonError::RpcFailed)).
    ///
    /// Same-binary discipline applies: register before traffic flows, and
    /// re-registering a name replaces its handler. Handlers run on scheduler
    /// workers and may themselves send parcels or RPCs (to *other* ranks;
    /// calling back into a busy self risks worker exhaustion).
    pub fn rpc_serve<M: RpcMethod>(
        &self,
        handler: impl Fn(M::Req) -> Result<M::Rep, String> + Send + Sync + 'static,
    ) {
        let srv_key = self.rpc().latency.register(&format!("{}@srv", M::NAME));
        let erased = Arc::new(move |bytes: &[u8]| match M::Req::from_bytes(bytes) {
            Ok(req) => match handler(req) {
                // A reply too large for its length prefixes is the request's
                // fault as stated (it asked for an unencodable answer): a
                // BAD_REQUEST verdict, never a truncated prefix on the wire.
                Ok(rep) => match rep.to_bytes() {
                    Ok(body) => (ST_OK, body),
                    Err(e) => (ST_BAD_REQUEST, format!("reply encode failed: {e}").into_bytes()),
                },
                Err(msg) => (ST_HANDLER_ERR, msg.into_bytes()),
            },
            Err(_) => (ST_BAD_REQUEST, Vec::new()),
        });
        self.rpc()
            .methods
            .write()
            .insert(method_hash(M::NAME), MethodEntry { latency_key: srv_key, handler: erased });
    }
}

/// Execute one request parcel (already on a scheduler worker).
pub(crate) fn handle_request(node: &Arc<RtNode>, payload: &[u8]) {
    let rpc = node.rpc();
    RpcCounters::bump(&rpc.counters.srv_requests);
    let Ok(env) = decode_request(payload) else {
        // No decodable correlation id: nowhere to send a verdict. The
        // caller's timeout owns this (same fate as a lost parcel).
        return;
    };
    let reply_to = env.client_rank as usize;

    // Resolve the method. The handler Arc is cloned out so the registry
    // lock is never held across handler execution.
    let entry = {
        let methods = rpc.methods.read();
        methods.get(&env.method).map(|m| (m.latency_key, Arc::clone(&m.handler)))
    };
    let Some((latency_key, handler)) = entry else {
        RpcCounters::bump(&rpc.counters.srv_unknown_method);
        send_reply(node, reply_to, env.corr, ST_NO_SUCH_METHOD, &[]);
        return;
    };

    if env.policy == DeliveryPolicy::AtMostOnce.code() {
        // Admission under the window lock, execution outside it: handlers
        // may be slow or themselves block, and duplicates arriving mid-run
        // must still get their InFlight verdict.
        let verdict = rpc.dedup.lock().admit(env.client_rank, env.client_id, env.seq);
        match verdict {
            Admit::Execute => {
                let (status, body) = timed_execute(node, latency_key, &handler, env.req);
                // Cache exactly the (status, body) tail the wire carries so
                // a replayed reply is byte-identical to this one.
                let mut cached = Vec::with_capacity(1 + body.len());
                cached.push(status);
                cached.extend_from_slice(&body);
                rpc.dedup.lock().complete(env.client_rank, env.client_id, env.seq, cached);
                send_reply(node, reply_to, env.corr, status, &body);
            }
            Admit::Replay(cached) => {
                RpcCounters::bump(&rpc.counters.srv_replayed);
                let (status, body) =
                    cached.split_first().map_or((ST_OK, &[][..]), |(s, b)| (*s, b));
                send_reply(node, reply_to, env.corr, status, body);
            }
            Admit::InFlight => {
                // The original execution will reply; answering here would
                // race it. The client's retry timer covers a lost original.
                RpcCounters::bump(&rpc.counters.srv_dup_inflight);
            }
            Admit::Stale => {
                RpcCounters::bump(&rpc.counters.srv_stale);
                send_reply(node, reply_to, env.corr, ST_STALE, &[]);
            }
            Admit::Busy => {
                RpcCounters::bump(&rpc.counters.srv_window_full);
                send_reply(node, reply_to, env.corr, ST_BUSY, &[]);
            }
        }
    } else {
        // Maybe / at-least-once: every delivery executes.
        let (status, body) = timed_execute(node, latency_key, &handler, env.req);
        send_reply(node, reply_to, env.corr, status, &body);
    }
}

/// Run the handler, recording its execution latency under `<method>@srv`.
///
/// Handler panics are contained here: they must not unwind into the
/// scheduler worker (killing it would silently shrink the worker pool for
/// every later parcel). A panic becomes an `ST_HANDLER_ERR` verdict like
/// any application error — cached, replayed, and counted under
/// `srv_handler_panics` — and the server keeps serving.
fn timed_execute(
    node: &Arc<RtNode>,
    latency_key: usize,
    handler: &ErasedHandler,
    req: &[u8],
) -> (u8, Vec<u8>) {
    let rpc = node.rpc();
    RpcCounters::bump(&rpc.counters.srv_executed);
    let start = std::time::Instant::now();
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(req)))
        .unwrap_or_else(|payload| {
            RpcCounters::bump(&rpc.counters.srv_handler_panics);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            (ST_HANDLER_ERR, format!("handler panicked: {msg}").into_bytes())
        });
    rpc.latency.record(latency_key, start.elapsed().as_nanos() as u64);
    out
}

fn send_reply(node: &Arc<RtNode>, reply_to: usize, corr: u64, status: u8, body: &[u8]) {
    let enc = encode_reply(corr, status, body);
    if node.send_parcel(reply_to, ACTION_RPC_REP, &enc).is_err() {
        RpcCounters::bump(&node.rpc().counters.srv_reply_failures);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::kv::{serve_kv, KvGet, KvPut};
    use crate::rpc::{Admit, RpcOptions};
    use crate::{ActionRegistry, RtConfig, RtError, RuntimeCluster};
    use photon_core::PhotonError;
    use photon_fabric::{NetworkModel, VTime};
    use std::time::Duration;

    fn boot(n: usize) -> RuntimeCluster {
        RuntimeCluster::new(n, NetworkModel::ib_fdr(), RtConfig::default(), ActionRegistry::new())
    }

    /// Satellite pin: a panicking handler must be contained as an
    /// `ST_HANDLER_ERR` verdict — not unwind a scheduler worker — and the
    /// server must keep serving afterwards. Pre-fix, the panic killed the
    /// worker thread and the call timed out instead of resolving.
    #[test]
    fn panicking_handler_is_a_verdict_and_the_server_keeps_serving() {
        struct Boom;
        impl RpcMethod for Boom {
            const NAME: &'static str = "boom.panic";
            type Req = u64;
            type Rep = u64;
        }
        let c = boot(2);
        let store = serve_kv(c.node(1));
        c.node(1).rpc_serve::<Boom>(|v| {
            if v == 13 {
                panic!("unlucky request {v}");
            }
            Ok(v)
        });
        let client = c.node(0).rpc_client(1);

        let err = client.call::<Boom>(&13, RpcOptions::at_most_once()).unwrap_err();
        match err {
            RtError::Photon(PhotonError::RpcFailed { method, reason }) => {
                assert_eq!(method, "boom.panic");
                assert!(reason.contains("handler panicked"), "{reason}");
                assert!(reason.contains("unlucky request 13"), "{reason}");
            }
            other => panic!("expected RpcFailed verdict, got {other:?}"),
        }
        // The same method still works for non-panicking input, and other
        // methods on the same node are untouched: no worker died.
        assert_eq!(client.call::<Boom>(&7, RpcOptions::at_most_once()).unwrap(), 7);
        client
            .call::<KvPut>(&(b"k".to_vec(), b"v".to_vec(), 1), RpcOptions::at_most_once())
            .unwrap();
        assert_eq!(
            client.call::<KvGet>(&b"k".to_vec(), RpcOptions::at_most_once()).unwrap(),
            Some(b"v".to_vec())
        );
        assert_eq!(store.apply_count(1), 1);
        let s = c.node(1).rpc_stats();
        assert_eq!(s.srv_handler_panics, 1);
        assert_eq!(s.srv_reply_failures, 0);
        // The panic verdict was cached like any reply: a replayed retry of
        // the same sequence number must not re-execute (and re-panic).
        let verdict = c.node(1).rpc().dedup.lock().admit(0, 1, 0);
        match verdict {
            Admit::Replay(cached) => assert_eq!(cached.first(), Some(&super::ST_HANDLER_ERR)),
            other => panic!("expected cached panic verdict, got {other:?}"),
        }
        c.shutdown();
    }

    /// Satellite pin: when the health machine declares a client's rank
    /// dead, the server must invoke the dedup window's forget path —
    /// otherwise dead clients' windows leak forever and a restarted rank
    /// reusing a client id collides with the dead instance's sequence
    /// state. Pre-fix, `clients()` stays non-zero and the rejoin admit
    /// below answers `Replay` instead of `Execute`.
    #[test]
    fn dead_client_rank_is_forgotten_and_a_rejoin_starts_clean() {
        let c = boot(3);
        serve_kv(c.node(0));
        // Rank 1 calls at-most-once, populating rank 0's dedup window for
        // client_rank=1 (first client id on a node is 1, seq starts at 0).
        let client = c.node(1).rpc_client(0);
        for i in 0..3u64 {
            client
                .call::<KvPut>(&(vec![i as u8], vec![9], 100 + i), RpcOptions::at_most_once())
                .unwrap();
        }
        assert_eq!(c.node(0).rpc().dedup.lock().clients(), 1);

        // Rank 1 dies; the server discovers it via its own health machine
        // (here: an explicit probe, as any traffic toward 1 would).
        c.photon().fabric().switch().faults().kill_node_at(1, VTime(0));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let _ = c.node(0).photon().check_peer(1);
            // The progress loop drains the dead-peer queue; wait for the
            // reap to land.
            if c.node(0).rpc_stats().srv_clients_forgotten >= 1 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "dead client never reaped");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(c.node(0).rpc().dedup.lock().clients(), 0, "dead rank's windows must drop");

        // A restarted rank 1 reusing client id 1 starts from seq 0: with
        // the stale window gone this is a fresh Execute, not a replay of
        // the dead instance's cached reply.
        assert_eq!(c.node(0).rpc().dedup.lock().admit(1, 1, 0), Admit::Execute);
        c.shutdown();
    }
}
