//! The remote KV service: the first application-level service in the repo,
//! and the standard workload for exercising delivery semantics.
//!
//! Three methods — `kv.get`, `kv.put`, `kv.cas` — over an in-memory map.
//! Mutating requests carry a caller-chosen **mutation token**; the store
//! keeps an apply-count per token, which is the audit trail the chaos
//! campaign's never-double-apply checker reads: under at-most-once, a token
//! must never be applied twice no matter how many times the client retried
//! across partitions, and a success reply implies it applied exactly once.
//! (Token 0 is untracked, for callers that don't need the audit.)

use super::RpcMethod;
use crate::runtime::RtNode;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// `kv.get`: request is the key, reply the value if present.
pub struct KvGet;

impl RpcMethod for KvGet {
    const NAME: &'static str = "kv.get";
    type Req = Vec<u8>;
    type Rep = Option<Vec<u8>>;
}

/// `kv.put`: request is `(key, value, token)`; unconditional overwrite.
pub struct KvPut;

impl RpcMethod for KvPut {
    const NAME: &'static str = "kv.put";
    type Req = (Vec<u8>, Vec<u8>, u64);
    type Rep = ();
}

/// `kv.cas`: request is `(key, expected, new, token)`; swaps to `new` and
/// replies `true` only when the current value equals `expected`
/// (`None` = key absent). The token counts as applied only on a swap.
pub struct KvCas;

impl RpcMethod for KvCas {
    const NAME: &'static str = "kv.cas";
    type Req = (Vec<u8>, Option<Vec<u8>>, Vec<u8>, u64);
    type Rep = bool;
}

/// The server-side store: the map plus the mutation-token audit.
#[derive(Debug, Default)]
pub struct KvStore {
    map: Mutex<HashMap<Vec<u8>, Vec<u8>>>,
    applied: Mutex<HashMap<u64, u64>>,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> Arc<KvStore> {
        Arc::new(KvStore::default())
    }

    /// Current value of `key`.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.lock().get(key).cloned()
    }

    /// Overwrite `key`, recording `token` as applied.
    pub fn put(&self, key: Vec<u8>, value: Vec<u8>, token: u64) {
        self.map.lock().insert(key, value);
        self.note_applied(token);
    }

    /// Compare-and-swap; `token` counts as applied only when the swap
    /// happened (a false CAS mutates nothing, so replaying it is harmless
    /// and must not trip the double-apply audit).
    pub fn cas(&self, key: Vec<u8>, expected: Option<Vec<u8>>, new: Vec<u8>, token: u64) -> bool {
        let mut map = self.map.lock();
        if map.get(&key).cloned() != expected {
            return false;
        }
        map.insert(key, new);
        drop(map);
        self.note_applied(token);
        true
    }

    fn note_applied(&self, token: u64) {
        if token != 0 {
            *self.applied.lock().entry(token).or_insert(0) += 1;
        }
    }

    /// How many times mutation `token` was applied (the never-double-apply
    /// checker asserts this never exceeds 1 for at-most-once traffic).
    pub fn apply_count(&self, token: u64) -> u64 {
        self.applied.lock().get(&token).copied().unwrap_or(0)
    }

    /// Snapshot of every tracked token's apply count.
    pub fn apply_counts(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<_> = self.applied.lock().iter().map(|(&t, &c)| (t, c)).collect();
        v.sort_unstable();
        v
    }

    /// Keys currently stored.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True when no key was ever written.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

/// Register the three KV handlers on `node`, returning the backing store
/// (the test/bench side reads it directly for audits).
pub fn serve_kv(node: &Arc<RtNode>) -> Arc<KvStore> {
    let store = KvStore::new();
    let s = Arc::clone(&store);
    node.rpc_serve::<KvGet>(move |key| Ok(s.get(&key)));
    let s = Arc::clone(&store);
    node.rpc_serve::<KvPut>(move |(key, value, token)| {
        s.put(key, value, token);
        Ok(())
    });
    let s = Arc::clone(&store);
    node.rpc_serve::<KvCas>(
        move |(key, expected, new, token)| Ok(s.cas(key, expected, new, token)),
    );
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::Wire;

    #[test]
    fn store_tracks_apply_counts() {
        let s = KvStore::new();
        assert!(s.is_empty());
        s.put(b"k".to_vec(), b"v1".to_vec(), 7);
        assert_eq!(s.get(b"k"), Some(b"v1".to_vec()));
        assert_eq!(s.apply_count(7), 1);
        s.put(b"k".to_vec(), b"v2".to_vec(), 7); // a double apply, on purpose
        assert_eq!(s.apply_count(7), 2);
        // Successful CAS applies its token; failed CAS does not.
        assert!(s.cas(b"k".to_vec(), Some(b"v2".to_vec()), b"v3".to_vec(), 9));
        assert!(!s.cas(b"k".to_vec(), Some(b"nope".to_vec()), b"v4".to_vec(), 10));
        assert_eq!(s.apply_count(9), 1);
        assert_eq!(s.apply_count(10), 0);
        assert_eq!(s.apply_counts(), vec![(7, 2), (9, 1)]);
        assert_eq!(s.len(), 1);
        // Token 0 is untracked.
        s.put(b"x".to_vec(), b"y".to_vec(), 0);
        assert_eq!(s.apply_count(0), 0);
    }

    #[test]
    fn method_wire_types_round_trip() {
        let req: <KvCas as RpcMethod>::Req =
            (b"key".to_vec(), Some(b"old".to_vec()), b"new".to_vec(), 42);
        let rt = <<KvCas as RpcMethod>::Req as Wire>::from_bytes(&req.to_bytes().unwrap()).unwrap();
        assert_eq!(rt, req);
        let rep: <KvGet as RpcMethod>::Rep = Some(b"v".to_vec());
        assert_eq!(
            <<KvGet as RpcMethod>::Rep as Wire>::from_bytes(&rep.to_bytes().unwrap()).unwrap(),
            rep
        );
    }
}
