//! Client side: typed calls, correlation matching, retry and failure
//! classification.
//!
//! One [`RpcClient`] is one at-most-once identity: a `(rank, client_id)`
//! pair whose sequence numbers index the server's dedup window. Identities
//! are never reused across client instances (a fresh instance gets a fresh
//! id), so a restarted client can never collide with its predecessor's
//! sequence space.
//!
//! The retry loop is where delivery policy meets the PR-4 health machine:
//! after every failed send or expired wait the client calls
//! [`Photon::check_peer`] on the server, which runs one health-gate pass —
//! a Suspect (partitioned) server gets a backoff-paced reconnection probe
//! that advances the virtual clock toward the partition's heal point, and a
//! dead one is confirmed dead. Retry therefore *converges deterministically*
//! in virtual time instead of spinning on wall-clock luck: either the
//! partition window is crossed and a retry lands, or the server is declared
//! dead and the call resolves to a typed error.
//!
//! [`Photon::check_peer`]: photon_core::Photon::check_peer

use super::wire::{
    decode_reply, encode_request, ST_BAD_REQUEST, ST_BUSY, ST_HANDLER_ERR, ST_NO_SUCH_METHOD,
    ST_OK, ST_STALE,
};
use super::{method_hash, DeliveryPolicy, RpcCounters, RpcMethod, Wire};
use crate::lco::FutureBytes;
use crate::runtime::{RtNode, ACTION_RPC_REQ};
use crate::{Rank, Result, RtError};
use photon_core::{PeerHealthState, PhotonError};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Per-call knobs: the delivery policy and the retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcOptions {
    /// Delivery semantics for this call.
    pub policy: DeliveryPolicy,
    /// Base per-attempt reply deadline; attempt `k` waits
    /// `timeout × 2^min(k, 3)` so retries back off while staying bounded.
    pub timeout: Duration,
    /// Total send attempts (1 = no retries; forced to 1 for
    /// [`DeliveryPolicy::Maybe`]).
    pub max_attempts: u32,
}

impl Default for RpcOptions {
    fn default() -> Self {
        RpcOptions {
            policy: DeliveryPolicy::AtLeastOnce,
            timeout: Duration::from_millis(100),
            max_attempts: 4,
        }
    }
}

impl RpcOptions {
    /// Fire-and-hope: one attempt, no retry.
    pub fn maybe() -> RpcOptions {
        RpcOptions { policy: DeliveryPolicy::Maybe, max_attempts: 1, ..RpcOptions::default() }
    }

    /// Retry until reply or budget exhaustion (handler may run repeatedly).
    pub fn at_least_once() -> RpcOptions {
        RpcOptions::default()
    }

    /// Retry with server-side dedup (handler runs at most once).
    pub fn at_most_once() -> RpcOptions {
        RpcOptions { policy: DeliveryPolicy::AtMostOnce, ..RpcOptions::default() }
    }

    /// Builder-style deadline override.
    pub fn with_timeout(mut self, t: Duration) -> RpcOptions {
        self.timeout = t;
        self
    }

    /// Builder-style attempt-budget override.
    pub fn with_attempts(mut self, n: u32) -> RpcOptions {
        self.max_attempts = n;
        self
    }
}

/// A handle for invoking methods on one server rank.
#[derive(Debug)]
pub struct RpcClient {
    node: Arc<RtNode>,
    server: Rank,
    client_id: u64,
    next_seq: std::sync::atomic::AtomicU64,
}

impl RtNode {
    /// A client handle for invoking RPCs on `server` (may be this rank).
    /// Each handle is a distinct at-most-once identity.
    pub fn rpc_client(self: &Arc<Self>, server: Rank) -> RpcClient {
        RpcClient {
            node: Arc::clone(self),
            server,
            client_id: self.rpc().next_client.fetch_add(1, Ordering::Relaxed),
            next_seq: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl RpcClient {
    /// The server rank this client targets.
    pub fn server(&self) -> Rank {
        self.server
    }

    /// Invoke method `M` with `req` under `opts`, blocking until the call
    /// resolves: `Ok` with the typed reply, or a typed error —
    /// [`PhotonError::RpcTimeout`] when the budget expired with the server
    /// still believed reachable (outcome unknown), [`PhotonError::RpcFailed`]
    /// when the server is dead or returned a verdict.
    pub fn call<M: RpcMethod>(&self, req: &M::Req, opts: RpcOptions) -> Result<M::Rep> {
        let node = &self.node;
        let rpc = node.rpc();
        let lat_key = rpc.latency.register(M::NAME);
        RpcCounters::bump(&rpc.counters.calls);

        let max_attempts =
            if opts.policy == DeliveryPolicy::Maybe { 1 } else { opts.max_attempts.max(1) };
        // Sequence numbers only mean something under at-most-once; other
        // policies carry zeros the server ignores.
        let (client_id, seq) = if opts.policy == DeliveryPolicy::AtMostOnce {
            (self.client_id, self.next_seq.fetch_add(1, Ordering::Relaxed))
        } else {
            (0, 0)
        };
        // Encode-time bound check: a request whose length-prefixed fields
        // exceed their u32 prefixes must fail here, before anything is
        // sent — truncating a prefix would desync the server's decoder.
        let req_bytes = match req.to_bytes() {
            Ok(b) => b,
            Err(e) => {
                RpcCounters::bump(&rpc.counters.replies_err);
                return Err(rpc_failed::<M>(format!("request encode failed: {e}")));
            }
        };

        // One correlation id for the whole call: every retry is a duplicate
        // of the same envelope, so whichever delivery's reply arrives first
        // resolves the call (the write-once future absorbs the rest). The
        // id only rotates on a Busy verdict, which consumes the future.
        let mut corr = rpc.next_corr.fetch_add(1, Ordering::Relaxed);
        let mut fut = FutureBytes::new();
        rpc.pending.lock().insert(corr, Arc::clone(&fut));
        let mut envelope = encode_request(
            corr,
            node.rank() as u32,
            client_id,
            seq,
            opts.policy.code(),
            method_hash(M::NAME),
            &req_bytes,
        );

        let started = std::time::Instant::now();
        let mut attempts = 0u32;
        let outcome = loop {
            attempts += 1;
            RpcCounters::bump(&rpc.counters.attempts);
            if attempts > 1 {
                RpcCounters::bump(&rpc.counters.retries);
            }
            let sent = match node.send_parcel(self.server, ACTION_RPC_REQ, &envelope) {
                Ok(()) => {
                    // Coalescing must not strand a lone request behind a
                    // half-full batch while we block on its reply.
                    let _ = node.flush_parcels();
                    true
                }
                Err(RtError::PeerDead(_)) => false,
                Err(e) => {
                    rpc.pending.lock().remove(&corr);
                    return Err(e);
                }
            };
            // Bounded wait even after a failed send: an *earlier* attempt
            // may have been delivered and its reply still be in flight.
            let deadline = opts.timeout * (1u32 << (attempts - 1).min(3));
            if let Some(reply) = fut.wait_for(deadline) {
                if matches!(decode_reply(&reply), Ok((_, ST_BUSY, _))) && attempts < max_attempts {
                    // The dedup window had no room; the future is spent,
                    // so the retry needs a fresh correlation id (the
                    // sequence number — the dedup identity — stays).
                    let mut pending = rpc.pending.lock();
                    pending.remove(&corr);
                    corr = rpc.next_corr.fetch_add(1, Ordering::Relaxed);
                    fut = FutureBytes::new();
                    pending.insert(corr, Arc::clone(&fut));
                    drop(pending);
                    envelope = encode_request(
                        corr,
                        node.rank() as u32,
                        client_id,
                        seq,
                        opts.policy.code(),
                        method_hash(M::NAME),
                        &req_bytes,
                    );
                    let _ = node.photon().check_peer(self.server);
                    // Busy is an instant verdict; without a pause the retry
                    // budget would burn out before any in-flight handler can
                    // finish and free a window slot.
                    std::thread::sleep(deadline / 2);
                    continue;
                }
                break Some(reply);
            }
            // No reply inside the attempt deadline: one health-gate pass —
            // probes a Suspect server (advancing the virtual clock toward a
            // partition heal) or confirms it dead.
            let _ = node.photon().check_peer(self.server);
            if !sent && opts.policy == DeliveryPolicy::Maybe {
                break None; // nothing was ever delivered; no point waiting
            }
            if attempts >= max_attempts {
                break None;
            }
        };
        rpc.pending.lock().remove(&corr);
        // A reply may have landed between the last wait and the removal.
        let outcome = outcome.or_else(|| fut.try_get());

        match outcome.as_deref().map(decode_reply) {
            Some(Ok((_, status, body))) => {
                rpc.latency.record(lat_key, started.elapsed().as_nanos() as u64);
                self.classify_reply::<M>(status, body)
            }
            Some(Err(_)) => {
                RpcCounters::bump(&rpc.counters.replies_err);
                Err(rpc_failed::<M>("malformed reply envelope".into()))
            }
            None => {
                let dead =
                    matches!(node.photon().peer_health(self.server), Ok(PeerHealthState::Dead));
                if dead {
                    RpcCounters::bump(&rpc.counters.failed_dead);
                    Err(rpc_failed::<M>(format!(
                        "server rank {} dead after {attempts} attempt(s)",
                        self.server
                    )))
                } else {
                    RpcCounters::bump(&rpc.counters.timeouts);
                    Err(RtError::Photon(PhotonError::RpcTimeout {
                        method: M::NAME.to_string(),
                        attempts,
                    }))
                }
            }
        }
    }

    fn classify_reply<M: RpcMethod>(&self, status: u8, body: &[u8]) -> Result<M::Rep> {
        let rpc = self.node.rpc();
        match status {
            ST_OK => match M::Rep::from_bytes(body) {
                Ok(rep) => {
                    RpcCounters::bump(&rpc.counters.replies_ok);
                    Ok(rep)
                }
                Err(_) => {
                    RpcCounters::bump(&rpc.counters.replies_err);
                    Err(rpc_failed::<M>("undecodable reply body".into()))
                }
            },
            ST_HANDLER_ERR => {
                RpcCounters::bump(&rpc.counters.replies_err);
                let msg = String::from_utf8_lossy(body).into_owned();
                Err(rpc_failed::<M>(format!("handler error: {msg}")))
            }
            ST_NO_SUCH_METHOD => {
                RpcCounters::bump(&rpc.counters.replies_err);
                Err(rpc_failed::<M>("no such method on server".into()))
            }
            ST_STALE => {
                RpcCounters::bump(&rpc.counters.replies_err);
                Err(rpc_failed::<M>("sequence number evicted from dedup window".into()))
            }
            ST_BUSY => {
                // Budget exhausted on a still-busy server: a verdict (the
                // request never executed), not an unknown.
                RpcCounters::bump(&rpc.counters.replies_err);
                Err(rpc_failed::<M>("server dedup window full".into()))
            }
            ST_BAD_REQUEST => {
                RpcCounters::bump(&rpc.counters.replies_err);
                let detail = if body.is_empty() {
                    "request failed to decode on server".to_string()
                } else {
                    String::from_utf8_lossy(body).into_owned()
                };
                Err(rpc_failed::<M>(detail))
            }
            other => {
                RpcCounters::bump(&rpc.counters.replies_err);
                Err(rpc_failed::<M>(format!("unknown reply status {other}")))
            }
        }
    }
}

fn rpc_failed<M: RpcMethod>(reason: String) -> RtError {
    RtError::Photon(PhotonError::RpcFailed { method: M::NAME.to_string(), reason })
}

/// Resolve one reply parcel against the pending-call table (already on a
/// scheduler worker). Replies for calls that already resolved (late
/// duplicates from retries) are counted and dropped.
pub(crate) fn handle_reply(node: &Arc<RtNode>, payload: &[u8]) {
    let rpc = node.rpc();
    let Ok((corr, _, _)) = decode_reply(payload) else { return };
    let fut = rpc.pending.lock().get(&corr).cloned();
    match fut {
        // The whole envelope is the call's resolution; duplicates are
        // absorbed by write-once semantics.
        Some(f) => f.set(payload.to_vec()),
        None => RpcCounters::bump(&rpc.counters.late_replies),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::kv::{serve_kv, KvCas, KvGet, KvPut};
    use crate::rpc::RpcMethod;
    use crate::{ActionRegistry, RtConfig, RuntimeCluster};
    use photon_fabric::NetworkModel;

    fn boot(n: usize) -> RuntimeCluster {
        RuntimeCluster::new(n, NetworkModel::ib_fdr(), RtConfig::default(), ActionRegistry::new())
    }

    #[test]
    fn kv_round_trip_all_policies() {
        let c = boot(2);
        let store = serve_kv(c.node(1));
        let client = c.node(0).rpc_client(1);
        for (i, opts) in
            [RpcOptions::maybe(), RpcOptions::at_least_once(), RpcOptions::at_most_once()]
                .into_iter()
                .enumerate()
        {
            let key = vec![i as u8];
            client.call::<KvPut>(&(key.clone(), b"v".to_vec(), 10 + i as u64), opts).unwrap();
            assert_eq!(client.call::<KvGet>(&key, opts).unwrap(), Some(b"v".to_vec()));
            assert_eq!(store.apply_count(10 + i as u64), 1);
        }
        // CAS: success then failure against the moved value.
        let cas = RpcOptions::at_most_once();
        assert!(client
            .call::<KvCas>(&(vec![0], Some(b"v".to_vec()), b"w".to_vec(), 77), cas)
            .unwrap());
        assert!(!client
            .call::<KvCas>(&(vec![0], Some(b"v".to_vec()), b"x".to_vec(), 78), cas)
            .unwrap());
        assert_eq!(store.get(&[0]), Some(b"w".to_vec()));
        assert_eq!((store.apply_count(77), store.apply_count(78)), (1, 0));

        let cs = c.node(0).rpc_stats();
        assert_eq!(cs.calls, 8);
        assert_eq!(cs.replies_ok, 8);
        assert_eq!((cs.retries, cs.timeouts, cs.failed_dead), (0, 0, 0));
        let ss = c.node(1).rpc_stats();
        assert_eq!(ss.srv_requests, 8);
        assert_eq!(ss.srv_executed, 8);
        assert_eq!(ss.srv_replayed, 0);
        // Latency: client keys on method names, server on `@srv` keys.
        assert!(c.node(0).rpc_latency().summary_of("kv.put").unwrap().count >= 1);
        assert!(c.node(1).rpc_latency().summary_of("kv.put@srv").unwrap().count >= 1);
        c.shutdown();
    }

    #[test]
    fn self_calls_and_concurrent_clients_work() {
        let c = boot(2);
        let store = serve_kv(c.node(0));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    // Two clients call from rank 1, two from the server's
                    // own rank (the local short-circuit path).
                    let client = c.node((t % 2) as usize).rpc_client(0);
                    for i in 0..8u64 {
                        let token = 1 + t * 100 + i;
                        let key = vec![t as u8, i as u8];
                        client
                            .call::<KvPut>(
                                &(key.clone(), vec![9], token),
                                RpcOptions::at_most_once(),
                            )
                            .unwrap();
                        assert_eq!(
                            client.call::<KvGet>(&key, RpcOptions::at_most_once()).unwrap(),
                            Some(vec![9])
                        );
                    }
                });
            }
        });
        for t in 0..4u64 {
            for i in 0..8u64 {
                assert_eq!(store.apply_count(1 + t * 100 + i), 1);
            }
        }
        assert_eq!(store.len(), 32);
        c.shutdown();
    }

    #[test]
    fn unknown_method_and_handler_errors_are_verdicts() {
        struct Nope;
        impl RpcMethod for Nope {
            const NAME: &'static str = "nope";
            type Req = ();
            type Rep = ();
        }
        struct Boom;
        impl RpcMethod for Boom {
            const NAME: &'static str = "boom";
            type Req = ();
            type Rep = ();
        }
        let c = boot(2);
        serve_kv(c.node(1));
        c.node(1).rpc_serve::<Boom>(|()| Err("kaboom".into()));
        let client = c.node(0).rpc_client(1);
        let err = client.call::<Nope>(&(), RpcOptions::at_least_once()).unwrap_err();
        match err {
            RtError::Photon(PhotonError::RpcFailed { method, reason }) => {
                assert_eq!(method, "nope");
                assert!(reason.contains("no such method"), "{reason}");
            }
            other => panic!("expected RpcFailed, got {other:?}"),
        }
        let err = client.call::<Boom>(&(), RpcOptions::at_most_once()).unwrap_err();
        match err {
            RtError::Photon(PhotonError::RpcFailed { method, reason }) => {
                assert_eq!(method, "boom");
                assert!(reason.contains("kaboom"), "{reason}");
            }
            other => panic!("expected RpcFailed, got {other:?}"),
        }
        // Verdicts are not retried: one attempt each.
        let cs = c.node(0).rpc_stats();
        assert_eq!(cs.attempts, 2);
        assert_eq!(cs.replies_err, 2);
        assert_eq!(c.node(1).rpc_stats().srv_unknown_method, 1);
        c.shutdown();
    }

    #[test]
    fn busy_window_resolves_by_retry_after_completion() {
        // A window of 1 with a slow handler: a second in-flight at-most-once
        // call gets Busy verdicts until the first completes, then succeeds
        // on a retry with a fresh correlation id.
        struct Slow;
        impl RpcMethod for Slow {
            const NAME: &'static str = "slow";
            type Req = u64;
            type Rep = u64;
        }
        let cfg =
            RtConfig { rpc: crate::rpc::RpcConfig { dedup_window: 1 }, ..RtConfig::default() };
        let c = RuntimeCluster::new(2, NetworkModel::ib_fdr(), cfg, ActionRegistry::new());
        c.node(1).rpc_serve::<Slow>(|v| {
            std::thread::sleep(Duration::from_millis(40));
            Ok(v * 2)
        });
        let n0 = Arc::clone(c.node(0));
        let client = Arc::new(n0.rpc_client(1));
        let opts =
            RpcOptions::at_most_once().with_timeout(Duration::from_millis(30)).with_attempts(6);
        let c1 = Arc::clone(&client);
        let h = std::thread::spawn(move || c1.call::<Slow>(&3, opts));
        let c2 = Arc::clone(&client);
        let h2 = std::thread::spawn(move || c2.call::<Slow>(&5, opts));
        let (a, b) = (h.join().unwrap().unwrap(), h2.join().unwrap().unwrap());
        assert_eq!(a + b, 16);
        // The window rejected at least one admission while full.
        assert!(c.node(1).rpc_stats().srv_window_full >= 1);
        c.shutdown();
    }

    #[test]
    fn at_most_once_sequences_are_per_client_instance() {
        let c = boot(2);
        let store = serve_kv(c.node(1));
        // Two client handles on the same rank: distinct identities, so
        // their identical sequence numbers never collide in the window.
        let a = c.node(0).rpc_client(1);
        let b = c.node(0).rpc_client(1);
        a.call::<KvPut>(&(vec![1], vec![1], 1), RpcOptions::at_most_once()).unwrap();
        b.call::<KvPut>(&(vec![2], vec![2], 2), RpcOptions::at_most_once()).unwrap();
        assert_eq!((store.apply_count(1), store.apply_count(2)), (1, 1));
        assert_eq!(c.node(1).rpc_stats().srv_executed, 2);
        c.shutdown();
    }
}
