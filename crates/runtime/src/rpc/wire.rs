//! Wire serialization for RPC payloads and envelopes.
//!
//! Little-endian, length-prefixed, no self-description — both sides run the
//! same binary (the action-registration discipline), so the method's
//! [`super::RpcMethod::Req`]/`Rep` types *are* the schema. Decoding is
//! defensive anyway: truncated or trailing bytes surface as
//! [`WireError::Malformed`], never panics, because requests cross trust
//! domains (a confused peer must not crash a server). Encoding is bounded
//! too: length prefixes are `u32`, so a body of 4 GiB or more is rejected
//! at encode time as [`WireError::TooLarge`] — truncating the prefix would
//! silently desync the codec.

use std::fmt;

/// Wire codec failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Decode failure: the bytes do not parse as the expected type.
    Malformed,
    /// Encode failure: a length-prefixed body is too large for its `u32`
    /// prefix (≥ 4 GiB); encoding it would truncate the prefix.
    TooLarge,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Malformed => write!(f, "malformed wire bytes"),
            WireError::TooLarge => write!(f, "body exceeds u32 length prefix"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append a `u32` length prefix for a body of `len` bytes, rejecting bodies
/// the prefix cannot represent. All length-prefixed [`Wire`] impls funnel
/// through here, so the bound is enforced in exactly one place.
pub fn put_len_prefix(out: &mut Vec<u8>, len: usize) -> Result<(), WireError> {
    let n = u32::try_from(len).map_err(|_| WireError::TooLarge)?;
    out.extend_from_slice(&n.to_le_bytes());
    Ok(())
}

/// A cursor over undecoded input.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wrap `buf` for decoding.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    /// Take `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Malformed);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Take a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// Take a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Take a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> &'a [u8] {
        self.buf
    }

    /// Error unless every byte was consumed (catches schema drift).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed)
        }
    }
}

/// Types that can ride RPC payloads.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`. Fails only when a
    /// length-prefixed body exceeds its `u32` prefix.
    fn put(&self, out: &mut Vec<u8>) -> Result<(), WireError>;
    /// Decode one value from the reader.
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encode to a fresh buffer.
    fn to_bytes(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        self.put(&mut out)?;
        Ok(out)
    }

    /// Decode from exactly `buf` (trailing bytes are an error).
    fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let v = Self::take(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl Wire for () {
    fn put(&self, _out: &mut Vec<u8>) -> Result<(), WireError> {
        Ok(())
    }
    fn take(_r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        out.push(*self as u8);
        Ok(())
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed),
        }
    }
}

impl Wire for u8 {
    fn put(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        out.push(*self);
        Ok(())
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u8()
    }
}

impl Wire for u32 {
    fn put(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        out.extend_from_slice(&self.to_le_bytes());
        Ok(())
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn put(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        out.extend_from_slice(&self.to_le_bytes());
        Ok(())
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl Wire for Vec<u8> {
    fn put(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        put_len_prefix(out, self.len())?;
        out.extend_from_slice(self);
        Ok(())
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.u32()? as usize;
        Ok(r.bytes(n)?.to_vec())
    }
}

impl Wire for String {
    fn put(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        put_len_prefix(out, self.len())?;
        out.extend_from_slice(self.as_bytes());
        Ok(())
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.u32()? as usize;
        String::from_utf8(r.bytes(n)?.to_vec()).map_err(|_| WireError::Malformed)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.put(out)?;
            }
        }
        Ok(())
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::take(r)?)),
            _ => Err(WireError::Malformed),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.0.put(out)?;
        self.1.put(out)
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::take(r)?, B::take(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn put(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.0.put(out)?;
        self.1.put(out)?;
        self.2.put(out)
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::take(r)?, B::take(r)?, C::take(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn put(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.0.put(out)?;
        self.1.put(out)?;
        self.2.put(out)?;
        self.3.put(out)
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::take(r)?, B::take(r)?, C::take(r)?, D::take(r)?))
    }
}

// ------------------------------------------------------------- envelopes

/// Reply status: the handler ran and succeeded.
pub(crate) const ST_OK: u8 = 0;
/// Reply status: the handler ran and returned an application error
/// (body is the UTF-8 message).
pub(crate) const ST_HANDLER_ERR: u8 = 1;
/// Reply status: the server has no such method registered.
pub(crate) const ST_NO_SUCH_METHOD: u8 = 2;
/// Reply status: at-most-once admission would exceed the dedup window's
/// in-flight capacity; retryable after backoff.
pub(crate) const ST_BUSY: u8 = 3;
/// Reply status: the request's sequence number fell below the dedup window
/// (its cached reply was evicted long ago); not retryable.
pub(crate) const ST_STALE: u8 = 4;
/// Reply status: the request was unserviceable as stated — its bytes did
/// not decode as the method's Req type, or its reply could not be encoded
/// within wire limits (body is an optional UTF-8 detail message).
pub(crate) const ST_BAD_REQUEST: u8 = 5;

/// A decoded request envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RequestEnvelope<'a> {
    /// Correlation id (caller-local; reply echoes it back).
    pub corr: u64,
    /// Caller's rank (reply destination).
    pub client_rank: u32,
    /// At-most-once client identity (0 for other policies).
    pub client_id: u64,
    /// At-most-once sequence number (0 for other policies).
    pub seq: u64,
    /// Delivery policy code.
    pub policy: u8,
    /// Method-name hash.
    pub method: u64,
    /// The encoded `Req` value.
    pub req: &'a [u8],
}

/// Encode a request envelope.
pub(crate) fn encode_request(
    corr: u64,
    client_rank: u32,
    client_id: u64,
    seq: u64,
    policy: u8,
    method: u64,
    req: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + 8 + 8 + 1 + 8 + req.len());
    out.extend_from_slice(&corr.to_le_bytes());
    out.extend_from_slice(&client_rank.to_le_bytes());
    out.extend_from_slice(&client_id.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(policy);
    out.extend_from_slice(&method.to_le_bytes());
    out.extend_from_slice(req);
    out
}

/// Decode a request envelope.
pub(crate) fn decode_request(buf: &[u8]) -> Result<RequestEnvelope<'_>, WireError> {
    let mut r = Reader::new(buf);
    let corr = r.u64()?;
    let client_rank = r.u32()?;
    let client_id = r.u64()?;
    let seq = r.u64()?;
    let policy = r.u8()?;
    let method = r.u64()?;
    Ok(RequestEnvelope { corr, client_rank, client_id, seq, policy, method, req: r.remaining() })
}

/// Encode a reply envelope: `[corr][status][body]`. The status+body tail is
/// exactly what the dedup window caches, so replayed replies are
/// byte-identical to the original (including handler errors).
pub(crate) fn encode_reply(corr: u64, status: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 1 + body.len());
    out.extend_from_slice(&corr.to_le_bytes());
    out.push(status);
    out.extend_from_slice(body);
    out
}

/// Decode a reply envelope into `(corr, status, body)`.
pub(crate) fn decode_reply(buf: &[u8]) -> Result<(u64, u8, &[u8]), WireError> {
    let mut r = Reader::new(buf);
    let corr = r.u64()?;
    let status = r.u8()?;
    Ok((corr, status, r.remaining()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::from_bytes(&v.to_bytes().unwrap()).unwrap(), v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(());
        round_trip(true);
        round_trip(false);
        round_trip(0xabu8);
        round_trip(0xdead_beefu32);
        round_trip(0x0123_4567_89ab_cdefu64);
    }

    #[test]
    fn containers_round_trip() {
        round_trip(Vec::<u8>::new());
        round_trip(vec![1u8, 2, 3]);
        round_trip(String::from("kv.get"));
        round_trip(Option::<Vec<u8>>::None);
        round_trip(Some(vec![9u8; 40]));
        round_trip((7u64, vec![1u8], String::from("x")));
        round_trip((1u8, 2u32, 3u64, Some(false)));
    }

    #[test]
    fn truncated_and_trailing_bytes_fail() {
        let enc = 0x1122_3344u32.to_bytes().unwrap();
        assert_eq!(u32::from_bytes(&enc[..3]), Err(WireError::Malformed));
        let mut extra = enc.clone();
        extra.push(0);
        assert_eq!(u32::from_bytes(&extra), Err(WireError::Malformed));
        // Length prefix pointing past the buffer.
        let bogus = 100u32.to_le_bytes().to_vec();
        assert_eq!(Vec::<u8>::from_bytes(&bogus), Err(WireError::Malformed));
        // Bad bool/option discriminants.
        assert_eq!(bool::from_bytes(&[2]), Err(WireError::Malformed));
        assert_eq!(Option::<u8>::from_bytes(&[7]), Err(WireError::Malformed));
        // Non-UTF-8 string bytes.
        let mut s = 2u32.to_le_bytes().to_vec();
        s.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(String::from_bytes(&s), Err(WireError::Malformed));
    }

    #[test]
    fn length_prefix_boundary_at_u32_max() {
        // The bound check lives in `put_len_prefix`, so the boundary is
        // testable without materializing 4 GiB bodies: exactly `u32::MAX`
        // bytes still encode; one more must be rejected, not truncated.
        let mut out = Vec::new();
        put_len_prefix(&mut out, u32::MAX as usize).unwrap();
        assert_eq!(out, u32::MAX.to_le_bytes());
        out.clear();
        assert_eq!(put_len_prefix(&mut out, u32::MAX as usize + 1), Err(WireError::TooLarge));
        assert!(out.is_empty(), "a rejected prefix must write nothing");
        // And a plainly huge length maps to the same error.
        assert_eq!(put_len_prefix(&mut out, usize::MAX), Err(WireError::TooLarge));
    }

    #[test]
    fn oversized_bodies_poison_the_whole_encode() {
        // A too-large field inside a composite value fails the composite's
        // encode (no partial emission of later fields).
        struct Huge;
        impl Wire for Huge {
            fn put(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
                put_len_prefix(out, u32::MAX as usize + 1)
            }
            fn take(_r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(Huge)
            }
        }
        assert_eq!((7u64, Huge).to_bytes().unwrap_err(), WireError::TooLarge);
        assert_eq!(Some(Huge).to_bytes().unwrap_err(), WireError::TooLarge);
    }

    #[test]
    fn request_envelope_round_trips() {
        let enc = encode_request(42, 3, 17, 9, 2, 0xfeed, b"payload");
        let env = decode_request(&enc).unwrap();
        assert_eq!(
            env,
            RequestEnvelope {
                corr: 42,
                client_rank: 3,
                client_id: 17,
                seq: 9,
                policy: 2,
                method: 0xfeed,
                req: b"payload",
            }
        );
        assert_eq!(decode_request(&enc[..10]), Err(WireError::Malformed));
    }

    #[test]
    fn reply_envelope_round_trips() {
        let enc = encode_reply(7, ST_OK, b"body");
        assert_eq!(decode_reply(&enc).unwrap(), (7, ST_OK, &b"body"[..]));
        assert_eq!(decode_reply(&enc[..5]), Err(WireError::Malformed));
    }
}
