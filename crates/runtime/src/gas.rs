//! A minimal PGAS layer: a block-distributed global array of `u64`s.
//!
//! Mirrors the global-address-space facility HPX-5 layers over Photon:
//! every rank owns a registered block; any rank reads/writes any element
//! with one-sided Photon operations, no owner involvement.

use crate::runtime::{RtNode, RuntimeCluster};
use crate::{Rank, Result, RtError};
use photon_core::buffers::BufferDescriptor;
use photon_core::PhotonBuffer;
use std::sync::Arc;

/// A global array of `n * elems_per_rank` little-endian `u64`s,
/// block-distributed across ranks.
#[derive(Debug)]
pub struct GlobalArray {
    elems_per_rank: usize,
    locals: Vec<PhotonBuffer>,
    descs: Vec<BufferDescriptor>,
}

impl RuntimeCluster {
    /// Collectively allocate a global array with `elems_per_rank` elements
    /// on every rank (done from the boot thread, like an HPX `gas_alloc` at
    /// startup).
    pub fn alloc_global_array(&self, elems_per_rank: usize) -> Result<Arc<GlobalArray>> {
        let mut locals = Vec::with_capacity(self.len());
        for node in self.nodes() {
            locals.push(node.photon().register_buffer(elems_per_rank * 8)?);
        }
        let descs = locals.iter().map(|b| b.descriptor()).collect();
        Ok(Arc::new(GlobalArray { elems_per_rank, locals, descs }))
    }
}

impl GlobalArray {
    /// Total elements.
    pub fn len(&self) -> usize {
        self.elems_per_rank * self.locals.len()
    }

    /// True for an empty array.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements owned by each rank.
    pub fn elems_per_rank(&self) -> usize {
        self.elems_per_rank
    }

    /// Owner and byte offset of element `idx`.
    pub fn locate(&self, idx: usize) -> (Rank, usize) {
        (idx / self.elems_per_rank, (idx % self.elems_per_rank) * 8)
    }

    fn check(&self, idx: usize) -> Result<()> {
        if idx >= self.len() {
            return Err(RtError::BadParcel("global index out of range"));
        }
        Ok(())
    }

    /// One-sided read of element `idx` from `node`.
    pub fn get(&self, node: &RtNode, idx: usize) -> Result<u64> {
        self.check(idx)?;
        let (owner, off) = self.locate(idx);
        if owner == node.rank() {
            return Ok(self.locals[owner].read_u64(off));
        }
        let p = node.photon();
        let tmp = p.register_buffer(8)?;
        let rid = p.internal_rid();
        p.get_with_completion(owner, &tmp, 0, 8, &self.descs[owner], off, rid)?;
        p.wait_local(rid)?;
        let v = tmp.read_u64(0);
        p.release_buffer(&tmp)?;
        Ok(v)
    }

    /// One-sided write of element `idx` from `node`; returns after the
    /// source is reusable (remote visibility follows fabric ordering).
    pub fn put(&self, node: &RtNode, idx: usize, v: u64) -> Result<()> {
        self.check(idx)?;
        let (owner, off) = self.locate(idx);
        if owner == node.rank() {
            self.locals[owner].write_u64(off, v);
            return Ok(());
        }
        let p = node.photon();
        let tmp = p.register_buffer(8)?;
        tmp.write_u64(0, v);
        let rid = p.internal_rid();
        p.put(owner, &tmp, 0, 8, &self.descs[owner], off, rid)?;
        p.wait_local(rid)?;
        p.release_buffer(&tmp)?;
        Ok(())
    }

    /// Bulk one-sided write (`memput`): store `values` at consecutive
    /// elements starting at `idx`. The span may cross block boundaries;
    /// each owner's stretch is written with one RDMA put.
    pub fn put_slice(&self, node: &RtNode, idx: usize, values: &[u64]) -> Result<()> {
        if values.is_empty() {
            return Ok(());
        }
        self.check(idx)?;
        self.check(idx + values.len() - 1)?;
        let p = node.photon();
        let tmp = p.register_buffer(values.len() * 8)?;
        for (k, v) in values.iter().enumerate() {
            tmp.write_u64(k * 8, *v);
        }
        let mut done = 0usize;
        while done < values.len() {
            let (owner, off) = self.locate(idx + done);
            let in_block =
                (self.elems_per_rank - (idx + done) % self.elems_per_rank).min(values.len() - done);
            let bytes = in_block * 8;
            if owner == node.rank() {
                let data = tmp.to_vec(done * 8, bytes);
                self.locals[owner].write_at(off, &data);
            } else {
                let rid = p.internal_rid();
                p.put(owner, &tmp, done * 8, bytes, &self.descs[owner], off, rid)?;
                p.wait_local(rid)?;
            }
            done += in_block;
        }
        p.release_buffer(&tmp)?;
        Ok(())
    }

    /// Bulk one-sided read (`memget`): load `out.len()` consecutive
    /// elements starting at `idx`.
    pub fn get_slice(&self, node: &RtNode, idx: usize, out: &mut [u64]) -> Result<()> {
        if out.is_empty() {
            return Ok(());
        }
        self.check(idx)?;
        self.check(idx + out.len() - 1)?;
        let p = node.photon();
        let tmp = p.register_buffer(out.len() * 8)?;
        let mut done = 0usize;
        while done < out.len() {
            let (owner, off) = self.locate(idx + done);
            let in_block =
                (self.elems_per_rank - (idx + done) % self.elems_per_rank).min(out.len() - done);
            let bytes = in_block * 8;
            if owner == node.rank() {
                let data = self.locals[owner].to_vec(off, bytes);
                tmp.write_at(done * 8, &data);
            } else {
                let rid = p.internal_rid();
                p.get_with_completion(owner, &tmp, done * 8, bytes, &self.descs[owner], off, rid)?;
                p.wait_local(rid)?;
            }
            done += in_block;
        }
        for (k, o) in out.iter_mut().enumerate() {
            *o = tmp.read_u64(k * 8);
        }
        p.release_buffer(&tmp)?;
        Ok(())
    }

    /// Direct access to the local block of `rank` (owner-side compute).
    pub fn local_block(&self, rank: Rank) -> &PhotonBuffer {
        &self.locals[rank]
    }
}

#[cfg(test)]
mod tests {

    use crate::{ActionRegistry, RtConfig, RuntimeCluster};
    use photon_fabric::NetworkModel;

    #[test]
    fn locate_math() {
        let c = RuntimeCluster::new(
            3,
            NetworkModel::ideal(),
            RtConfig::default(),
            ActionRegistry::new(),
        );
        let a = c.alloc_global_array(4).unwrap();
        assert_eq!(a.len(), 12);
        assert_eq!(a.locate(0), (0, 0));
        assert_eq!(a.locate(3), (0, 24));
        assert_eq!(a.locate(4), (1, 0));
        assert_eq!(a.locate(11), (2, 24));
        c.shutdown();
    }

    #[test]
    fn remote_put_get_roundtrip() {
        let c = RuntimeCluster::new(
            2,
            NetworkModel::ib_fdr(),
            RtConfig::default(),
            ActionRegistry::new(),
        );
        let a = c.alloc_global_array(8).unwrap();
        let n0 = c.node(0);
        // Element 10 lives on rank 1; write and read it from rank 0.
        a.put(n0, 10, 777).unwrap();
        assert_eq!(a.get(n0, 10).unwrap(), 777);
        // Owner sees it directly.
        assert_eq!(a.local_block(1).read_u64(2 * 8), 777);
        // Local fast path.
        a.put(n0, 3, 42).unwrap();
        assert_eq!(a.get(n0, 3).unwrap(), 42);
        c.shutdown();
    }

    #[test]
    fn slice_ops_cross_block_boundaries() {
        let c = RuntimeCluster::new(
            3,
            NetworkModel::ib_fdr(),
            RtConfig::default(),
            ActionRegistry::new(),
        );
        let a = c.alloc_global_array(4).unwrap(); // 12 elements over 3 ranks
        let n0 = c.node(0);
        // Write a 7-element stretch spanning ranks 0, 1 and 2.
        let values: Vec<u64> = (100..107).collect();
        a.put_slice(n0, 2, &values).unwrap();
        // Read it back from another rank.
        let n2 = c.node(2);
        let mut out = vec![0u64; 7];
        a.get_slice(n2, 2, &mut out).unwrap();
        assert_eq!(out, values);
        // Owners see their stretches directly.
        assert_eq!(a.local_block(0).read_u64(2 * 8), 100);
        assert_eq!(a.local_block(1).read_u64(0), 102);
        assert_eq!(a.local_block(2).read_u64(0), 106);
        // Bounds are enforced.
        assert!(a.put_slice(n0, 10, &[1, 2, 3]).is_err());
        let mut big = vec![0u64; 13];
        assert!(a.get_slice(n0, 0, &mut big).is_err());
        c.shutdown();
    }

    #[test]
    fn out_of_range_rejected() {
        let c = RuntimeCluster::new(
            1,
            NetworkModel::ideal(),
            RtConfig::default(),
            ActionRegistry::new(),
        );
        let a = c.alloc_global_array(2).unwrap();
        assert!(a.get(c.node(0), 5).is_err());
        c.shutdown();
    }
}
