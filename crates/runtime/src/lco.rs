//! Local control objects: the synchronization vocabulary of a parcel
//! runtime (HPX-5's LCOs, abridged).

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// A global reference to an LCO: `(rank, id)`. Parcels carry these as
//  continuations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LcoRef {
    /// Owning rank.
    pub rank: usize,
    /// Id within the owner's LCO table.
    pub id: u64,
}

/// A write-once future holding bytes.
#[derive(Debug, Default)]
pub struct FutureBytes {
    state: Mutex<Option<Vec<u8>>>,
    cv: Condvar,
}

impl FutureBytes {
    /// An unset future.
    pub fn new() -> Arc<FutureBytes> {
        Arc::new(FutureBytes::default())
    }

    /// Set the value; later sets are ignored (write-once).
    pub fn set(&self, v: Vec<u8>) {
        let mut st = self.state.lock();
        if st.is_none() {
            *st = Some(v);
            self.cv.notify_all();
        }
    }

    /// Non-blocking read.
    pub fn try_get(&self) -> Option<Vec<u8>> {
        self.state.lock().clone()
    }

    /// True once set.
    pub fn is_set(&self) -> bool {
        self.state.lock().is_some()
    }

    /// Block until set; returns a copy of the value.
    pub fn wait(&self) -> Vec<u8> {
        let mut st = self.state.lock();
        while st.is_none() {
            self.cv.wait(&mut st);
        }
        st.clone().expect("value present")
    }

    /// Block until set or `timeout` elapses; `None` on timeout. The future
    /// stays usable — a later [`FutureBytes::set`] still lands, so bounded
    /// waiters (RPC attempt deadlines) can re-wait on the same future.
    pub fn wait_for(&self, timeout: std::time::Duration) -> Option<Vec<u8>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.state.lock();
        while st.is_none() {
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.cv.wait_for(&mut st, deadline - now);
        }
        st.clone()
    }
}

/// A latch that opens after `n` countdowns.
#[derive(Debug)]
pub struct CountdownLatch {
    remaining: Mutex<u64>,
    cv: Condvar,
}

impl CountdownLatch {
    /// A latch expecting `n` events.
    pub fn new(n: u64) -> Arc<CountdownLatch> {
        Arc::new(CountdownLatch { remaining: Mutex::new(n), cv: Condvar::new() })
    }

    /// Record one event.
    pub fn count_down(&self) {
        let mut r = self.remaining.lock();
        if *r > 0 {
            *r -= 1;
            if *r == 0 {
                self.cv.notify_all();
            }
        }
    }

    /// Events still outstanding.
    pub fn remaining(&self) -> u64 {
        *self.remaining.lock()
    }

    /// Block until the latch opens.
    pub fn wait(&self) {
        let mut r = self.remaining.lock();
        while *r > 0 {
            self.cv.wait(&mut r);
        }
    }
}

/// A reduction LCO: accumulates `n` u64 contributions with `op`, then
/// releases the reduced value.
#[derive(Debug)]
pub struct ReduceLco {
    state: Mutex<(u64, u64)>, // (joined, acc)
    expected: u64,
    op: fn(u64, u64) -> u64,
    cv: Condvar,
}

impl ReduceLco {
    /// A reduction expecting `expected` joins, starting from `init`.
    pub fn new(expected: u64, init: u64, op: fn(u64, u64) -> u64) -> Arc<ReduceLco> {
        Arc::new(ReduceLco { state: Mutex::new((0, init)), expected, op, cv: Condvar::new() })
    }

    /// Contribute a value.
    pub fn join(&self, v: u64) {
        let mut st = self.state.lock();
        st.0 += 1;
        st.1 = (self.op)(st.1, v);
        if st.0 >= self.expected {
            self.cv.notify_all();
        }
    }

    /// Block until all contributions arrived; returns the reduced value.
    pub fn wait(&self) -> u64 {
        let mut st = self.state.lock();
        while st.0 < self.expected {
            self.cv.wait(&mut st);
        }
        st.1
    }
}

/// Wait for every future in `futures`, returning their values in order.
pub fn when_all(futures: &[Arc<FutureBytes>]) -> Vec<Vec<u8>> {
    futures.iter().map(|f| f.wait()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn future_set_once() {
        let f = FutureBytes::new();
        assert!(!f.is_set());
        assert!(f.try_get().is_none());
        f.set(vec![1, 2]);
        f.set(vec![9]); // ignored
        assert_eq!(f.wait(), vec![1, 2]);
        assert_eq!(f.try_get(), Some(vec![1, 2]));
    }

    #[test]
    fn future_wait_for_times_out_then_still_lands() {
        let f = FutureBytes::new();
        assert_eq!(f.wait_for(std::time::Duration::from_millis(5)), None);
        f.set(vec![3]);
        assert_eq!(f.wait_for(std::time::Duration::from_millis(5)), Some(vec![3]));
    }

    #[test]
    fn future_wakes_waiters() {
        let f = FutureBytes::new();
        let f2 = Arc::clone(&f);
        let h = thread::spawn(move || f2.wait());
        thread::sleep(std::time::Duration::from_millis(20));
        f.set(b"done".to_vec());
        assert_eq!(h.join().unwrap(), b"done");
    }

    #[test]
    fn latch_counts_down() {
        let l = CountdownLatch::new(3);
        let l2 = Arc::clone(&l);
        let h = thread::spawn(move || l2.wait());
        assert_eq!(l.remaining(), 3);
        l.count_down();
        l.count_down();
        assert_eq!(l.remaining(), 1);
        l.count_down();
        h.join().unwrap();
        // Extra countdowns are harmless.
        l.count_down();
        assert_eq!(l.remaining(), 0);
    }

    #[test]
    fn when_all_collects_in_order() {
        let futures: Vec<_> = (0..4).map(|_| FutureBytes::new()).collect();
        let f2: Vec<_> = futures.iter().map(Arc::clone).collect();
        let h = thread::spawn(move || when_all(&f2));
        // Set out of order.
        for i in [2usize, 0, 3, 1] {
            thread::sleep(std::time::Duration::from_millis(2));
            futures[i].set(vec![i as u8]);
        }
        assert_eq!(h.join().unwrap(), vec![vec![2u8 - 2], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn reduce_lco_combines() {
        let r = ReduceLco::new(4, 0, |a, b| a + b);
        let handles: Vec<_> = (1..=4u64)
            .map(|v| {
                let r = Arc::clone(&r);
                thread::spawn(move || r.join(v * 10))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.wait(), 100);
    }

    #[test]
    fn reduce_lco_max() {
        let r = ReduceLco::new(3, u64::MIN, |a, b| a.max(b));
        r.join(5);
        r.join(17);
        r.join(2);
        assert_eq!(r.wait(), 17);
    }
}
