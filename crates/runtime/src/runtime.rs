//! The node runtime: parcel transport + scheduler + LCO table, glued to one
//! Photon context per rank.

use crate::action::{ActionId, ActionRegistry, RtContext};
use crate::coalesce::Coalescer;
use crate::lco::{FutureBytes, LcoRef};
use crate::parcel::Parcel;
use crate::rpc::RpcCounters;
use crate::scheduler::Scheduler;
use crate::{Rank, Result, RtError};
use parking_lot::Mutex;
use photon_core::{Completion, Photon, PhotonCluster, PhotonConfig, ProbeFlags, Recycler};
use photon_fabric::NetworkModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Completion id of eager parcel messages on the runtime's Photon context.
const RID_PARCEL: u64 = 1;
/// Completion id of large-parcel rendezvous control messages.
const RID_RDV_CTRL: u64 = 2;

/// Internal action: set an LCO with the payload.
const ACTION_SET_LCO: ActionId = 0;
/// Internal action: an RPC request envelope (see [`crate::rpc`]).
pub(crate) const ACTION_RPC_REQ: ActionId = 1;
/// Internal action: an RPC reply envelope.
pub(crate) const ACTION_RPC_REP: ActionId = 2;

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct RtConfig {
    /// Worker threads per node.
    pub workers: usize,
    /// Parcels with encodings at or below this size travel as one eager PWC
    /// message; larger ones rendezvous.
    pub parcel_eager_max: usize,
    /// Coalesce up to this many small parcels per destination into one
    /// doorbell-batched eager post (0 disables coalescing). Batches also
    /// flush when full for the wire, when the progress thread idles, or on
    /// [`RtNode::flush_parcels`].
    pub coalesce_max: usize,
    /// RPC-layer knobs (dedup-window sizing; see [`crate::rpc`]).
    pub rpc: crate::rpc::RpcConfig,
    /// Gossip membership: when set, every node runs the epidemic
    /// membership protocol ([`photon_core::Membership`]) off its progress
    /// thread, so deaths, joins and departures disseminate cluster-wide
    /// without any rank polling all N peers. `None` (the default) keeps
    /// membership knowledge purely local, as before.
    pub membership: Option<photon_core::MembershipConfig>,
    /// The middleware configuration underneath.
    pub photon: PhotonConfig,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            workers: 2,
            parcel_eager_max: 8192,
            coalesce_max: 0,
            rpc: crate::rpc::RpcConfig::default(),
            membership: None,
            photon: PhotonConfig::default(),
        }
    }
}

photon_core::counter_registry! {
    /// Atomic runtime counters for one node (see [`RtStats`]).
    registry RtCounters;
    /// Runtime statistics for one node.
    snapshot RtStats;
    table RT_COUNTERS;
    counters {
        /// Parcels sent (local short-circuits included).
        parcels_sent,
        /// Parcels executed on this node.
        parcels_run,
        /// Parcels that took the rendezvous path.
        parcels_rdv,
        /// Coalesced batches flushed to the wire.
        batches_sent,
        /// Parcels whose send failed because the target was dead or became
        /// unreachable (not counted in `parcels_sent`: they never entered the
        /// system, so quiescence stays sound among survivors).
        parcels_failed,
        /// Incoming large parcels abandoned because their sender died
        /// mid-rendezvous (ctrl message arrived, payload never will).
        parcels_dropped,
    }
}

/// One rank of the runtime job.
#[derive(Debug)]
pub struct RtNode {
    rank: Rank,
    n: usize,
    cfg: RtConfig,
    photon: Arc<Photon>,
    sched: Arc<Scheduler>,
    registry: Arc<ActionRegistry>,
    lcos: Mutex<HashMap<u64, Arc<FutureBytes>>>,
    next_lco: AtomicU64,
    next_tag: AtomicU64,
    shutdown: AtomicBool,
    stats: RtCounters,
    coalescer: Mutex<Coalescer>,
    rpc: crate::rpc::RpcState,
    membership: Option<photon_core::Membership>,
    self_ref: Mutex<Option<Arc<RtNode>>>,
}

/// A whole runtime job: `n` nodes over one Photon cluster, with worker and
/// progress threads running until [`RuntimeCluster::shutdown`].
#[derive(Debug)]
pub struct RuntimeCluster {
    photon: PhotonCluster,
    nodes: Vec<Arc<RtNode>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl RuntimeCluster {
    /// Boot an `n`-node runtime over `model` with the given action registry
    /// (must contain every action any rank will invoke).
    pub fn new(
        n: usize,
        model: NetworkModel,
        cfg: RtConfig,
        registry: ActionRegistry,
    ) -> RuntimeCluster {
        let photon = PhotonCluster::new(n, model, cfg.photon);
        let registry = Arc::new(registry);
        let mut nodes = Vec::with_capacity(n);
        let mut handles = Vec::new();
        for i in 0..n {
            let (sched, mut worker_handles) = Scheduler::start(cfg.workers, &format!("rt{i}"));
            let node = Arc::new(RtNode {
                rank: i,
                n,
                cfg,
                photon: Arc::clone(photon.rank(i)),
                sched,
                registry: Arc::clone(&registry),
                lcos: Mutex::new(HashMap::new()),
                next_lco: AtomicU64::new(1),
                next_tag: AtomicU64::new(1),
                shutdown: AtomicBool::new(false),
                stats: RtCounters::default(),
                coalescer: Mutex::new(Coalescer::new(n)),
                rpc: crate::rpc::RpcState::new(cfg.rpc),
                membership: cfg.membership.map(|mcfg| {
                    photon_core::Membership::new(
                        Arc::clone(photon.rank(i)),
                        mcfg,
                        0x6055_1900 ^ i as u64,
                    )
                }),
                self_ref: Mutex::new(None),
            });
            *node.self_ref.lock() = Some(Arc::clone(&node));
            let progress_node = Arc::clone(&node);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rt{i}-progress"))
                    .spawn(move || progress_node.progress_loop())
                    .expect("spawn progress thread"),
            );
            handles.append(&mut worker_handles);
            nodes.push(node);
        }
        RuntimeCluster { photon, nodes, handles: Mutex::new(handles) }
    }

    /// The node runtime for `rank`.
    pub fn node(&self, rank: Rank) -> &Arc<RtNode> {
        &self.nodes[rank]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Arc<RtNode>] {
        &self.nodes
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty job.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The Photon cluster underneath (experiments reach through for stats).
    pub fn photon(&self) -> &PhotonCluster {
        &self.photon
    }

    /// Stop progress threads and schedulers; joins all threads. Idempotent.
    pub fn shutdown(&self) {
        for node in &self.nodes {
            node.shutdown.store(true, Ordering::Release);
            node.sched.stop();
        }
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        for node in &self.nodes {
            node.self_ref.lock().take();
        }
    }
}

impl Drop for RuntimeCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl RtNode {
    /// This node's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Ranks in the job.
    pub fn size(&self) -> usize {
        self.n
    }

    /// The Photon context (collectives, buffers, virtual time).
    pub fn photon(&self) -> &Arc<Photon> {
        &self.photon
    }

    /// Runtime statistics.
    pub fn stats(&self) -> RtStats {
        self.stats.snapshot()
    }

    /// The node's RPC state (crate-internal plumbing).
    pub(crate) fn rpc(&self) -> &crate::rpc::RpcState {
        &self.rpc
    }

    /// The gossip membership instance, when [`RtConfig::membership`] is
    /// set: query views, statuses and dissemination statistics.
    pub fn membership(&self) -> Option<&photon_core::Membership> {
        self.membership.as_ref()
    }

    /// RPC statistics for this node (client and server side).
    pub fn rpc_stats(&self) -> crate::rpc::RpcStats {
        self.rpc.counters.snapshot()
    }

    /// Per-method RPC latency histograms: client round-trips are keyed by
    /// the method name, server-side handler executions by `<name>@srv`.
    pub fn rpc_latency(&self) -> &photon_core::KeyedLatency {
        &self.rpc.latency
    }

    /// Account for `n` parcels that failed to send because their target is
    /// dead: they never entered the system, so back them out of the `sent`
    /// counter (keeping quiescence's sent-vs-run accounting sound among the
    /// survivors) and count them as failed.
    fn note_send_failure(&self, n: u64, e: RtError) -> RtError {
        if matches!(e, RtError::PeerDead(_)) {
            RtCounters::add(&self.stats.parcels_failed, n);
            self.stats.parcels_sent.fetch_sub(n, Ordering::AcqRel);
        }
        e
    }

    fn me(&self) -> Arc<RtNode> {
        self.self_ref.lock().clone().expect("runtime is live")
    }

    /// Allocate a future on this node; the [`LcoRef`] can ride in parcels
    /// as a continuation.
    pub fn new_future(&self) -> (LcoRef, Arc<FutureBytes>) {
        let id = self.next_lco.fetch_add(1, Ordering::Relaxed);
        let f = FutureBytes::new();
        self.lcos.lock().insert(id, Arc::clone(&f));
        (LcoRef { rank: self.rank, id }, f)
    }

    /// Spawn a local task on this node's workers.
    pub fn spawn(&self, f: impl FnOnce(&RtContext<'_>) + Send + 'static) {
        let node = self.me();
        self.sched.submit(Box::new(move || {
            let ctx = RtContext { node: &node, cont: None };
            f(&ctx);
        }));
    }

    /// Fire-and-forget active message.
    pub fn send_parcel(&self, target: Rank, action: ActionId, payload: &[u8]) -> Result<()> {
        self.send_parcel_inner(target, Parcel::new(action, payload.to_vec()))
    }

    /// Active message whose handler result sets `cont`.
    pub fn send_parcel_with_cont(
        &self,
        target: Rank,
        action: ActionId,
        payload: &[u8],
        cont: LcoRef,
    ) -> Result<()> {
        self.send_parcel_inner(target, Parcel::with_cont(action, payload.to_vec(), cont))
    }

    fn send_parcel_inner(&self, target: Rank, p: Parcel) -> Result<()> {
        if target >= self.n {
            return Err(RtError::InvalidRank(target));
        }
        if self.shutdown.load(Ordering::Acquire) {
            return Err(RtError::ShuttingDown);
        }
        RtCounters::bump(&self.stats.parcels_sent);
        if target == self.rank {
            let node = self.me();
            self.sched.submit(Box::new(move || node.run_parcel(p)));
            return Ok(());
        }
        let enc = p.encode();
        let eager_cap = self.cfg.parcel_eager_max.min(self.photon.config().max_eager_payload());
        if enc.len() > eager_cap {
            return self.send_parcel_rendezvous(target, p);
        }
        if self.cfg.coalesce_max > 1 {
            let flush = {
                let mut co = self.coalescer.lock();
                let batch = co.batch_mut(target);
                // Flush first if appending would overflow the eager budget.
                if batch.wire_len() + enc.len() > eager_cap && batch.len() > 0 {
                    Some(batch.take())
                } else {
                    None
                }
            };
            if let Some(parcels) = flush {
                self.send_batch(target, parcels)?;
            }
            let full = {
                let mut co = self.coalescer.lock();
                let batch = co.batch_mut(target);
                batch.push(&enc);
                (batch.len() >= self.cfg.coalesce_max).then(|| batch.take())
            };
            if let Some(parcels) = full {
                self.send_batch(target, parcels)?;
            }
            return Ok(());
        }
        self.photon
            .send(target, &enc, RID_PARCEL)
            .map_err(|e| self.note_send_failure(1, e.into()))?;
        Ok(())
    }

    /// Flush a coalesced batch: every parcel stays its own eager frame, but
    /// the whole run goes out as one doorbell-batched post.
    fn send_batch(&self, target: Rank, parcels: Vec<Vec<u8>>) -> Result<()> {
        self.photon
            .send_many(target, &parcels, RID_PARCEL)
            .map_err(|e| self.note_send_failure(parcels.len() as u64, e.into()))?;
        RtCounters::bump(&self.stats.batches_sent);
        // The staging vectors came from the thread-local recycler cache
        // (`Batch::push`); the payloads live in the ring now, so the vectors
        // go back for the next batch.
        for v in parcels {
            Recycler::give(v);
        }
        Ok(())
    }

    /// Send the same parcel to every rank (self included): the fan-out
    /// primitive runtime broadcasts are built from.
    pub fn broadcast_parcel(&self, action: ActionId, payload: &[u8]) -> Result<()> {
        for r in 0..self.n {
            self.send_parcel(r, action, payload)?;
        }
        Ok(())
    }

    /// Force-flush all coalesced batches (call before waiting on replies).
    pub fn flush_parcels(&self) -> Result<()> {
        let pending = self.coalescer.lock().take_all();
        for (peer, parcels) in pending {
            self.send_batch(peer, parcels)?;
        }
        Ok(())
    }

    fn send_parcel_rendezvous(&self, target: Rank, p: Parcel) -> Result<()> {
        RtCounters::bump(&self.stats.parcels_rdv);
        let tag = ((self.rank as u64) << 32) | self.next_tag.fetch_add(1, Ordering::Relaxed);
        // Control message: tag, size, then the parcel header (no payload).
        let hdr_only = Parcel { action: p.action, payload: bytes::Bytes::new(), cont: p.cont };
        let mut ctrl = Vec::with_capacity(16 + crate::parcel::PARCEL_HDR);
        ctrl.extend_from_slice(&tag.to_le_bytes());
        ctrl.extend_from_slice(&(p.payload.len() as u64).to_le_bytes());
        ctrl.extend_from_slice(&hdr_only.encode());
        self.photon
            .send(target, &ctrl, RID_RDV_CTRL)
            .map_err(|e| self.note_send_failure(1, e.into()))?;
        // Stage the payload in a registered buffer and run the Photon
        // rendezvous against the receiver's announced landing zone. If the
        // receiver dies mid-handshake the rendezvous resolves with
        // PeerDead (the core's failure-aware waits) rather than hanging.
        let buf = self.photon.register_buffer(p.payload.len())?;
        buf.write_at(0, &p.payload);
        let sent = self.photon.send_rendezvous(target, &buf, 0, p.payload.len(), tag);
        self.photon.release_buffer(&buf)?;
        sent.map_err(|e| self.note_send_failure(1, e.into()))?;
        Ok(())
    }

    // ------------------------------------------------------ progress side

    fn progress_loop(self: Arc<RtNode>) {
        // Batch drain: one progress pass harvests up to a whole batch of
        // remote events instead of paying probe overhead per event. Only
        // Remote events are drained here — parcel sends and rendezvous wait
        // on their local completions from the posting threads.
        const BATCH: usize = 64;
        let mut idle: u32 = 0;
        let mut events: Vec<Completion> = Vec::with_capacity(BATCH);
        while !self.shutdown.load(Ordering::Acquire) {
            // Reap per-peer runtime state for ranks the health machine has
            // just evicted (one atomic load when nothing died): dead
            // clients' at-most-once dedup windows must not leak, and a
            // restarted rank reusing a client id must not collide with its
            // dead predecessor's sequence state.
            for peer in self.photon.take_dead_peers() {
                let forgotten = self.rpc.dedup.lock().forget_rank(peer as u32);
                if forgotten > 0 {
                    RpcCounters::add(&self.rpc.counters.srv_clients_forgotten, forgotten as u64);
                }
                if let Some(m) = &self.membership {
                    m.note_dead(peer);
                }
            }
            // Gossip rounds ride the progress thread, interval-gated in
            // virtual time inside tick().
            if let Some(m) = &self.membership {
                m.tick();
            }
            match self.photon.poll_completions(ProbeFlags::Remote, &mut events, BATCH) {
                Ok(0) => {
                    idle = idle.saturating_add(1);
                    if idle == 16 {
                        // Idle: push out any half-full coalescing batches so
                        // batching never strands the tail of a burst.
                        let _ = self.flush_parcels();
                    }
                    if idle > 256 {
                        std::thread::sleep(Duration::from_micros(50));
                    } else {
                        std::thread::yield_now();
                    }
                }
                Ok(_) => {
                    idle = 0;
                    for c in events.drain(..) {
                        if c.is_remote() {
                            self.handle_remote(c);
                        }
                    }
                }
                Err(_) if self.shutdown.load(Ordering::Acquire) => return,
                // Peer failure is survivable: the middleware has evicted the
                // peer and resolved its pending state; keep serving the
                // survivors. Anything else is a runtime bug and stays fatal.
                Err(e) if matches!(RtError::from(e.clone()), RtError::PeerDead(_)) => {
                    idle = 0;
                }
                Err(e) => panic!("runtime progress failed on rank {}: {e}", self.rank),
            }
        }
    }

    fn handle_remote(self: &Arc<RtNode>, ev: Completion) {
        match ev.rid {
            RID_PARCEL => {
                let Some(bytes) = ev.payload else { return };
                match Parcel::decode(&bytes) {
                    Ok(p) => {
                        let node = Arc::clone(self);
                        self.sched.submit(Box::new(move || node.run_parcel(p)));
                    }
                    Err(_) => { /* malformed parcel: drop, counted nowhere */ }
                }
            }
            RID_RDV_CTRL => {
                let Some(bytes) = ev.payload else { return };
                if bytes.len() < 16 {
                    return;
                }
                let tag = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
                let size = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
                let Ok(hdr) = Parcel::decode(&bytes[16..]) else { return };
                let node = Arc::clone(self);
                let src = ev.peer;
                // The pull runs on a worker so the progress thread keeps
                // probing (the rendezvous needs it to deliver the announce).
                self.sched.submit(Box::new(move || {
                    let run = || -> Result<()> {
                        let buf = node.photon.register_buffer(size)?;
                        node.photon.post_recv_buffer(src, &buf, 0, size, tag)?;
                        // Transient stalls get bounded re-waits; peer death
                        // escalates out of the loop immediately (the
                        // failure-aware wait_fin runs the health gate).
                        let mut attempts = 0;
                        loop {
                            match node.photon.wait_fin(src, tag) {
                                Ok(_) => break,
                                Err(photon_core::PhotonError::Timeout { .. }) if attempts < 2 => {
                                    attempts += 1;
                                }
                                Err(e) => return Err(e.into()),
                            }
                        }
                        let payload = buf.to_vec(0, size);
                        node.photon.release_buffer(&buf)?;
                        node.run_parcel(Parcel {
                            action: hdr.action,
                            payload: payload.into(),
                            cont: hdr.cont,
                        });
                        Ok(())
                    };
                    match run() {
                        Ok(()) => {}
                        // The sender died between its control message and
                        // the payload transfer: the parcel can never run.
                        // Count the drop and degrade gracefully.
                        Err(RtError::PeerDead(_)) => {
                            RtCounters::bump(&node.stats.parcels_dropped);
                        }
                        Err(e) => {
                            panic!("large-parcel receive failed on rank {}: {e}", node.rank)
                        }
                    }
                }));
            }
            _ => { /* not runtime traffic */ }
        }
    }

    fn run_parcel(self: &Arc<RtNode>, p: Parcel) {
        self.run_parcel_inner(p);
        // Counted at COMPLETION, after every send the handler performed:
        // quiescence detection relies on `sent` being visibly ahead of
        // `run` whenever follow-on work can still appear.
        self.stats.parcels_run.fetch_add(1, Ordering::AcqRel);
    }

    fn run_parcel_inner(self: &Arc<RtNode>, p: Parcel) {
        if p.action == ACTION_SET_LCO {
            if p.payload.len() >= 8 {
                let id = u64::from_le_bytes(p.payload[0..8].try_into().unwrap());
                if let Some(f) = self.lcos.lock().remove(&id) {
                    f.set(p.payload[8..].to_vec());
                }
            }
            return;
        }
        if p.action == ACTION_RPC_REQ {
            crate::rpc::server::handle_request(self, &p.payload);
            return;
        }
        if p.action == ACTION_RPC_REP {
            crate::rpc::client::handle_reply(self, &p.payload);
            return;
        }
        let Some(handler) = self.registry.get(p.action) else {
            // Unknown action: in a real runtime this is fatal; here we drop
            // and count it as run so quiescence still converges.
            return;
        };
        let ctx = RtContext { node: self, cont: p.cont };
        let result = handler(&ctx, &p.payload);
        if let (Some(bytes), Some(cont)) = (result, p.cont) {
            let mut payload = Vec::with_capacity(8 + bytes.len());
            payload.extend_from_slice(&cont.id.to_le_bytes());
            payload.extend_from_slice(&bytes);
            let _ = self.send_parcel_inner(cont.rank, Parcel::new(ACTION_SET_LCO, payload));
        }
    }

    /// Global quiescence: block until every parcel sent anywhere has been
    /// executed and no handler can produce more work. **Collective** — one
    /// application thread per rank must call it concurrently.
    ///
    /// Termination detection over monotone counters: each round flushes
    /// coalescing batches and allreduces `(total sent, total run)`; two
    /// consecutive rounds with *identical, equal* totals prove no activity
    /// occurred between them and nothing is outstanding. Soundness needs
    /// `sent` incremented before injection and `run` only at handler
    /// completion, which the transport guarantees.
    pub fn quiescence(&self) -> Result<()> {
        let mut prev = (u64::MAX, u64::MAX);
        loop {
            self.flush_parcels()?;
            let mut v = [
                self.stats.parcels_sent.load(Ordering::Acquire),
                self.stats.parcels_run.load(Ordering::Acquire),
            ];
            self.photon.allreduce_u64(&mut v, photon_core::ReduceOp::Sum)?;
            if v[0] == v[1] && (v[0], v[1]) == prev {
                return Ok(());
            }
            prev = (v[0], v[1]);
            std::thread::yield_now();
        }
    }

    /// Barrier across all nodes' *application* threads (delegates to the
    /// Photon collective; the progress thread keeps running).
    pub fn barrier(&self) -> Result<()> {
        self.photon.barrier()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn boot(n: usize, reg: ActionRegistry) -> RuntimeCluster {
        RuntimeCluster::new(n, NetworkModel::ib_fdr(), RtConfig::default(), reg)
    }

    #[test]
    fn parcel_roundtrip_with_continuation() {
        let mut reg = ActionRegistry::new();
        let double = reg.register("double", |_ctx, payload| {
            let v = u64::from_le_bytes(payload.try_into().unwrap());
            Some((2 * v).to_le_bytes().to_vec())
        });
        let c = boot(2, reg);
        let n0 = c.node(0);
        let (lco, fut) = n0.new_future();
        n0.send_parcel_with_cont(1, double, &21u64.to_le_bytes(), lco).unwrap();
        assert_eq!(fut.wait(), 42u64.to_le_bytes());
        assert!(c.node(1).stats().parcels_run >= 1);
        c.shutdown();
    }

    #[test]
    fn local_parcels_short_circuit() {
        let mut reg = ActionRegistry::new();
        let touch = {
            reg.register("touch", move |ctx, _| {
                assert_eq!(ctx.rank(), 0);
                Some(vec![7])
            })
        };
        let c = boot(1, reg);
        let n0 = c.node(0);
        let (lco, fut) = n0.new_future();
        n0.send_parcel_with_cont(0, touch, &[], lco).unwrap();
        assert_eq!(fut.wait(), vec![7]);
        c.shutdown();
    }

    #[test]
    fn large_parcels_take_rendezvous() {
        let mut reg = ActionRegistry::new();
        let sum = reg.register("sum", |_ctx, payload| {
            let s: u64 = payload.iter().map(|&b| b as u64).sum();
            Some(s.to_le_bytes().to_vec())
        });
        let c = boot(2, reg);
        let n0 = c.node(0);
        let payload = vec![1u8; 64 * 1024];
        let (lco, fut) = n0.new_future();
        n0.send_parcel_with_cont(1, sum, &payload, lco).unwrap();
        assert_eq!(fut.wait(), (64 * 1024u64).to_le_bytes());
        assert_eq!(n0.stats().parcels_rdv, 1);
        c.shutdown();
    }

    #[test]
    fn parcels_fan_out_and_come_back() {
        // Rank 0 scatters increments to every rank; each replies via cont.
        let mut reg = ActionRegistry::new();
        let bump = reg.register("bump", |ctx, payload| {
            let v = u64::from_le_bytes(payload.try_into().unwrap());
            Some((v + ctx.rank() as u64).to_le_bytes().to_vec())
        });
        let n = 4;
        let c = boot(n, reg);
        let n0 = c.node(0);
        let mut futs = Vec::new();
        for r in 0..n {
            let (lco, fut) = n0.new_future();
            n0.send_parcel_with_cont(r, bump, &100u64.to_le_bytes(), lco).unwrap();
            futs.push((r, fut));
        }
        for (r, fut) in futs {
            let v = u64::from_le_bytes(fut.wait().try_into().unwrap());
            assert_eq!(v, 100 + r as u64);
        }
        c.shutdown();
    }

    #[test]
    fn handlers_can_send_parcels() {
        // A ring: each handler forwards to the next rank until TTL runs out,
        // then sets the continuation on rank 0.
        static DONE: AtomicUsize = AtomicUsize::new(0);
        let mut reg = ActionRegistry::new();
        let hop_id = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let hop_id2 = std::sync::Arc::clone(&hop_id);
        let hop = reg.register("hop", move |ctx, payload| {
            let ttl = payload[0];
            if ttl == 0 {
                DONE.fetch_add(1, Ordering::Relaxed);
                None
            } else {
                let next = (ctx.rank() + 1) % ctx.size();
                ctx.send_parcel(next, hop_id2.load(Ordering::Relaxed), &[ttl - 1]).unwrap();
                None
            }
        });
        hop_id.store(hop, Ordering::Relaxed);
        let c = boot(3, reg);
        c.node(0).send_parcel(1, hop, &[7]).unwrap();
        // Spin until the chain finished.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while DONE.load(Ordering::Relaxed) == 0 {
            assert!(std::time::Instant::now() < deadline, "ring never finished");
            std::thread::yield_now();
        }
        c.shutdown();
    }

    #[test]
    fn quiescence_waits_for_parcel_trees() {
        // An irregular fan-out: each parcel spawns children until TTL=0.
        // quiescence() must not return while any descendant is in flight.
        let mut reg = ActionRegistry::new();
        let leaves = std::sync::Arc::new(AtomicUsize::new(0));
        let leaves2 = std::sync::Arc::clone(&leaves);
        let fan_id = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let fan_id2 = std::sync::Arc::clone(&fan_id);
        let fan = reg.register("fan", move |ctx, payload| {
            let ttl = payload[0];
            if ttl == 0 {
                leaves2.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            let id = fan_id2.load(Ordering::Relaxed);
            let n = ctx.size();
            ctx.send_parcel((ctx.rank() + 1) % n, id, &[ttl - 1]).unwrap();
            ctx.send_parcel((ctx.rank() + 2) % n, id, &[ttl - 1]).unwrap();
            None
        });
        fan_id.store(fan, Ordering::Relaxed);
        let n = 3;
        let cfg = RtConfig { coalesce_max: 8, ..RtConfig::default() };
        let c = RuntimeCluster::new(n, NetworkModel::ib_fdr(), cfg, reg);
        let depth = 9u8;
        std::thread::scope(|s| {
            for i in 0..n {
                let c = &c;
                s.spawn(move || {
                    if i == 0 {
                        c.node(0).send_parcel(1, fan, &[depth]).unwrap();
                    }
                    c.node(i).quiescence().unwrap();
                });
            }
        });
        // At quiescence, every leaf must have run: 2^depth of them.
        assert_eq!(leaves.load(Ordering::Relaxed), 1usize << depth);
        c.shutdown();
    }

    #[test]
    fn quiescence_is_reusable_across_phases() {
        let mut reg = ActionRegistry::new();
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        let count2 = std::sync::Arc::clone(&count);
        let bump = reg.register("bump", move |_ctx, _| {
            count2.fetch_add(1, Ordering::Relaxed);
            None
        });
        let n = 2;
        let c = RuntimeCluster::new(n, NetworkModel::ib_fdr(), RtConfig::default(), reg);
        std::thread::scope(|s| {
            for i in 0..n {
                let c = &c;
                let count = &count;
                s.spawn(move || {
                    for phase in 1..=3usize {
                        for _ in 0..10 {
                            c.node(i).send_parcel(1 - i, bump, &[]).unwrap();
                        }
                        c.node(i).quiescence().unwrap();
                        // Quiescence guarantees everything sent so far ran;
                        // a peer may already be racing ahead into the next
                        // phase, so this is a lower bound, not an equality.
                        assert!(count.load(Ordering::Relaxed) >= phase * n * 10);
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 3 * n * 10);
        c.shutdown();
    }

    #[test]
    fn coalesced_parcels_all_arrive() {
        let mut reg = ActionRegistry::new();
        let seen = std::sync::Arc::new(AtomicUsize::new(0));
        let seen2 = std::sync::Arc::clone(&seen);
        let sink = reg.register("sink", move |_ctx, payload| {
            assert_eq!(payload.len(), 24);
            seen2.fetch_add(1, Ordering::Relaxed);
            None
        });
        let cfg = RtConfig { coalesce_max: 16, ..RtConfig::default() };
        let c = RuntimeCluster::new(2, NetworkModel::ib_fdr(), cfg, reg);
        let n0 = c.node(0);
        // 100 parcels: 6 full batches of 16, plus a partial tail that only
        // the idle-flush (or explicit flush) pushes out.
        for _ in 0..100 {
            n0.send_parcel(1, sink, &[7u8; 24]).unwrap();
        }
        n0.flush_parcels().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while seen.load(Ordering::Relaxed) < 100 {
            assert!(std::time::Instant::now() < deadline, "parcels lost in batching");
            std::thread::yield_now();
        }
        assert!(n0.stats().batches_sent >= 6);
        assert!(
            n0.stats().batches_sent < 100,
            "batching must actually aggregate: {} wire messages",
            n0.stats().batches_sent
        );
        c.shutdown();
    }

    #[test]
    fn idle_progress_thread_flushes_partial_batches() {
        let mut reg = ActionRegistry::new();
        let seen = std::sync::Arc::new(AtomicUsize::new(0));
        let seen2 = std::sync::Arc::clone(&seen);
        let sink = reg.register("sink", move |_ctx, _| {
            seen2.fetch_add(1, Ordering::Relaxed);
            None
        });
        let cfg = RtConfig { coalesce_max: 64, ..RtConfig::default() };
        let c = RuntimeCluster::new(2, NetworkModel::ib_fdr(), cfg, reg);
        // 3 parcels never fill a 64-batch; the idle flush must deliver them
        // without an explicit flush_parcels call.
        for _ in 0..3 {
            c.node(0).send_parcel(1, sink, &[1]).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while seen.load(Ordering::Relaxed) < 3 {
            assert!(std::time::Instant::now() < deadline, "idle flush never fired");
            std::thread::yield_now();
        }
        c.shutdown();
    }

    #[test]
    fn invalid_rank_and_shutdown_errors() {
        let reg = ActionRegistry::new();
        let c = boot(1, reg);
        assert!(matches!(c.node(0).send_parcel(5, 16, &[]), Err(RtError::InvalidRank(5))));
        c.shutdown();
        assert!(matches!(c.node(0).send_parcel(0, 16, &[]), Err(RtError::ShuttingDown)));
    }

    #[test]
    fn parcels_to_dead_rank_fail_without_stalling_survivors() {
        use photon_fabric::VTime;
        let mut reg = ActionRegistry::new();
        let echo = reg.register("echo", |_ctx, payload| Some(payload.to_vec()));
        let c = boot(3, reg);
        c.photon().fabric().switch().faults().kill_node_at(2, VTime(0));
        let n0 = c.node(0);
        // Toward the dead rank: a clean, classified failure (the first send
        // trips detection; every later one fails fast).
        let err = n0.send_parcel(2, echo, b"void").unwrap_err();
        assert_eq!(err, RtError::PeerDead(2));
        assert_eq!(n0.send_parcel(2, echo, b"void").unwrap_err(), RtError::PeerDead(2));
        let s = n0.stats();
        assert_eq!(s.parcels_failed, 2);
        assert_eq!(s.parcels_sent, 0, "failed sends are backed out of the sent counter");
        // Toward the survivor: unaffected, continuation still fires.
        let (lco, fut) = n0.new_future();
        n0.send_parcel_with_cont(1, echo, b"alive", lco).unwrap();
        assert_eq!(fut.wait(), b"alive");
        c.shutdown();
    }

    #[test]
    fn large_parcel_to_dead_rank_fails_cleanly() {
        use photon_fabric::VTime;
        let mut reg = ActionRegistry::new();
        let sink = reg.register("sink", |_, _| None);
        let c = boot(2, reg);
        c.photon().fabric().switch().faults().kill_node_at(1, VTime(0));
        let n0 = c.node(0);
        // The rendezvous path: the control send (or the buffer-announce
        // wait) resolves with PeerDead instead of spinning to a timeout.
        let payload = vec![3u8; 64 * 1024];
        assert_eq!(n0.send_parcel(1, sink, &payload).unwrap_err(), RtError::PeerDead(1));
        assert_eq!(n0.stats().parcels_failed, 1);
        c.shutdown();
    }

    #[test]
    fn gossip_membership_disseminates_death_to_bystanders() {
        use photon_core::{MemberStatus, MembershipConfig};
        use photon_fabric::VTime;
        let mut reg = ActionRegistry::new();
        let echo = reg.register("echo", |_ctx, payload| Some(payload.to_vec()));
        let cfg = RtConfig {
            membership: Some(MembershipConfig { fanout: 2, interval_ns: 1_000, max_rumors: 64 }),
            ..RtConfig::default()
        };
        let c = RuntimeCluster::new(4, NetworkModel::ib_fdr(), cfg, reg);
        c.photon().fabric().switch().faults().kill_node_at(3, VTime(0));
        // Only node 0 ever talks to the dead rank; nodes 1 and 2 must learn
        // of the death purely from gossip.
        let n0 = c.node(0);
        assert_eq!(n0.send_parcel(3, echo, b"void").unwrap_err(), RtError::PeerDead(3));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let informed = [1, 2]
                .iter()
                .all(|&i| c.node(i).membership().unwrap().status_of(3) == MemberStatus::Dead);
            if informed {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "death rumor never spread");
            // Progress threads gate rounds on virtual time; nudge it along.
            for i in 0..3 {
                c.node(i).photon().elapse(1_000);
            }
            std::thread::yield_now();
        }
        // Survivors keep working while the rumor mill turns.
        let (lco, fut) = n0.new_future();
        n0.send_parcel_with_cont(1, echo, b"alive", lco).unwrap();
        assert_eq!(fut.wait(), b"alive");
        c.shutdown();
    }

    #[test]
    fn app_threads_can_use_barrier_alongside_parcels() {
        let mut reg = ActionRegistry::new();
        let noop = reg.register("noop", |_, _| None);
        let n = 3;
        let c = boot(n, reg);
        std::thread::scope(|s| {
            for i in 0..n {
                let c = &c;
                s.spawn(move || {
                    let node = c.node(i);
                    node.send_parcel((i + 1) % n, noop, b"x").unwrap();
                    node.barrier().unwrap();
                    node.barrier().unwrap();
                });
            }
        });
        c.shutdown();
    }
}
