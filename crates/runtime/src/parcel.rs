//! Parcels: the active-message unit.
//!
//! Wire format (little-endian):
//!
//! ```text
//! [ action u32 | flags u8 | pad ×3 | cont_rank u32 | cont_id u64 | payload… ]
//! ```

use crate::lco::LcoRef;
use crate::{ActionId, Rank, RtError};
use bytes::Bytes;

/// Parcel header size on the wire.
pub const PARCEL_HDR: usize = 20;

const FLAG_CONT: u8 = 1;

/// An active message: run `action(payload)` at the target; if the handler
/// returns bytes and a continuation is present, set that LCO with them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parcel {
    /// Handler to run at the target.
    pub action: ActionId,
    /// Handler argument bytes.
    pub payload: Bytes,
    /// Optional continuation LCO (usually on the spawning rank).
    pub cont: Option<LcoRef>,
}

impl Parcel {
    /// A parcel with no continuation.
    pub fn new(action: ActionId, payload: impl Into<Bytes>) -> Parcel {
        Parcel { action, payload: payload.into(), cont: None }
    }

    /// A parcel whose result sets `cont`.
    pub fn with_cont(action: ActionId, payload: impl Into<Bytes>, cont: LcoRef) -> Parcel {
        Parcel { action, payload: payload.into(), cont: Some(cont) }
    }

    /// Encode for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(PARCEL_HDR + self.payload.len());
        b.extend_from_slice(&self.action.to_le_bytes());
        let (flags, crank, cid) = match &self.cont {
            Some(c) => (FLAG_CONT, c.rank as u32, c.id),
            None => (0, 0, 0),
        };
        b.push(flags);
        b.extend_from_slice(&[0u8; 3]);
        b.extend_from_slice(&crank.to_le_bytes());
        b.extend_from_slice(&cid.to_le_bytes());
        b.extend_from_slice(&self.payload);
        b
    }

    /// Decode from the wire.
    pub fn decode(b: &[u8]) -> Result<Parcel, RtError> {
        if b.len() < PARCEL_HDR {
            return Err(RtError::BadParcel("short header"));
        }
        let action = u32::from_le_bytes(b[0..4].try_into().unwrap());
        let flags = b[4];
        let cont = if flags & FLAG_CONT != 0 {
            let rank = u32::from_le_bytes(b[8..12].try_into().unwrap()) as Rank;
            let id = u64::from_le_bytes(b[12..20].try_into().unwrap());
            Some(LcoRef { rank, id })
        } else {
            None
        };
        Ok(Parcel { action, payload: Bytes::copy_from_slice(&b[PARCEL_HDR..]), cont })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_with_and_without_cont() {
        let p = Parcel::new(17, &b"work"[..]);
        assert_eq!(Parcel::decode(&p.encode()).unwrap(), p);
        let c = Parcel::with_cont(99, &b""[..], LcoRef { rank: 3, id: 0xdead });
        assert_eq!(Parcel::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(matches!(Parcel::decode(&[0u8; 5]), Err(RtError::BadParcel(_))));
    }

    proptest! {
        #[test]
        fn roundtrip_prop(action in any::<u32>(), payload in proptest::collection::vec(any::<u8>(), 0..256),
                          cont in proptest::option::of((0usize..64, any::<u64>()))) {
            let p = Parcel {
                action,
                payload: Bytes::from(payload),
                cont: cont.map(|(rank, id)| LcoRef { rank, id }),
            };
            prop_assert_eq!(Parcel::decode(&p.encode()).unwrap(), p);
        }
    }
}
