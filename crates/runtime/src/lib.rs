//! # photon-runtime — an HPX-5-lite parcel runtime over Photon
//!
//! Photon's reason to exist is *runtime systems*: message-driven execution
//! models (HPX-5, AM++) that move work to data with active messages and
//! need one-sided data movement **with remote progress notification**.
//! This crate is a compact runtime of that species, built entirely on the
//! `photon-core` public API, serving both as the consumer that motivates the
//! middleware and as the driver for the application-level experiments
//! (GUPS, stencil, parcel rate).
//!
//! Pieces:
//!
//! * **Actions** ([`action`]) — named handlers registered identically on
//!   every rank before the runtime starts (the same-binary discipline of
//!   HPX-5 action registration).
//! * **Parcels** ([`parcel`]) — `(action, payload, optional continuation)`
//!   tuples. Small parcels travel as single eager PWC messages; large ones
//!   use the Photon rendezvous protocol with a control parcel upfront.
//! * **Scheduler** ([`scheduler`]) — per-node work-stealing worker pool
//!   (crossbeam deques) executing parcel handlers.
//! * **LCOs** ([`lco`]) — local control objects: futures, countdown
//!   latches, reductions; parcels can carry a continuation that sets a
//!   future on the spawning rank when the remote action returns a value.
//! * **PGAS** ([`gas`]) — a block-distributed global array addressed by
//!   element index, with one-sided `put`/`get` through Photon.
//! * **RPC** ([`rpc`]) — typed remote invocations over parcels with
//!   explicit delivery semantics (maybe / at-least-once / at-most-once with
//!   server-side dedup), plus the remote KV service built on them.
//!
//! ## Example
//!
//! ```
//! use photon_runtime::{ActionRegistry, RtConfig, RuntimeCluster};
//! use photon_fabric::NetworkModel;
//!
//! let mut reg = ActionRegistry::new();
//! let echo = reg.register("echo", |_ctx, payload| Some(payload.to_vec()));
//!
//! let cluster = RuntimeCluster::new(2, NetworkModel::ib_fdr(), RtConfig::default(), reg);
//! let node0 = cluster.node(0);
//!
//! // Fire an action on rank 1, continuation delivers the result here.
//! let (lco, future) = node0.new_future();
//! node0.send_parcel_with_cont(1, echo, b"ping", lco).unwrap();
//! assert_eq!(future.wait(), b"ping");
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub mod action;
pub mod coalesce;
pub mod gas;
pub mod launch;
pub mod lco;
pub mod parcel;
pub mod rpc;
pub mod runtime;
pub mod scheduler;

pub use action::{ActionId, ActionRegistry, RtContext};
pub use gas::GlobalArray;
pub use launch::{launch, LaunchSpec};
pub use lco::{when_all, CountdownLatch, FutureBytes, LcoRef, ReduceLco};
pub use parcel::Parcel;
pub use rpc::{DeliveryPolicy, RpcClient, RpcConfig, RpcMethod, RpcOptions, RpcStats, Wire};
pub use runtime::{RtConfig, RtNode, RuntimeCluster};

use photon_core::PhotonError;
use std::fmt;

/// A rank in the runtime job.
pub type Rank = usize;

/// Errors surfaced by the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// Underlying middleware error.
    Photon(PhotonError),
    /// Unknown action id in a parcel.
    UnknownAction(u32),
    /// Rank out of range.
    InvalidRank(Rank),
    /// Malformed parcel bytes.
    BadParcel(&'static str),
    /// The runtime is shutting down.
    ShuttingDown,
    /// The target rank crashed or was evicted by the middleware's health
    /// machine: the parcel was not (and will never be) delivered. The
    /// runtime degrades gracefully — traffic to surviving ranks continues.
    PeerDead(Rank),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Photon(e) => write!(f, "photon: {e}"),
            RtError::UnknownAction(a) => write!(f, "unknown action {a}"),
            RtError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            RtError::BadParcel(w) => write!(f, "bad parcel: {w}"),
            RtError::ShuttingDown => write!(f, "runtime shutting down"),
            RtError::PeerDead(r) => write!(f, "peer rank {r} is dead"),
        }
    }
}

impl std::error::Error for RtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtError::Photon(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PhotonError> for RtError {
    fn from(e: PhotonError) -> Self {
        match e {
            // Normalize both faces of peer failure (declared-dead from the
            // health machine, raw unreachability from the fabric) into one
            // runtime-level classification.
            PhotonError::PeerDead(r) => RtError::PeerDead(r),
            PhotonError::Fabric(photon_fabric::FabricError::PeerUnreachable { node }) => {
                RtError::PeerDead(node)
            }
            e => RtError::Photon(e),
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RtError>;
