//! Multi-process job launching (the `photon-launch` binary's engine).
//!
//! A Photon job over the sockets backend is `n` OS processes plus one
//! out-of-band rendezvous: the launcher binds the TCP bootstrap socket,
//! serves the [`photon_fabric::sock::BootstrapServer`] rounds on a thread,
//! and spawns one child process per rank with the
//! [`photon_core::process`] environment contract
//! (`PHOTON_RANK` / `PHOTON_NRANKS` / `PHOTON_BOOTSTRAP`). Children join
//! through [`photon_core::PhotonProcess::from_env`]; the launcher waits for
//! all of them and propagates the first failing exit code — the `mpirun`
//! role, scoped to localhost-style single-host jobs.
//!
//! Jobs come from the command line (`photon-launch -n 4 -- prog args...`)
//! or from a TOML-subset spec file:
//!
//! ```toml
//! # job.toml — consumed by `photon-launch --spec job.toml`
//! n = 4
//! bind = "127.0.0.1:0"
//! program = "target/debug/examples/pingpong"
//! args = ["--iters", "100"]
//!
//! [env]
//! RUST_BACKTRACE = "1"
//! ```

use photon_core::process::{ENV_BOOTSTRAP, ENV_NRANKS, ENV_RANK};
use photon_fabric::sock::BootstrapServer;
use std::process::{Child, Command};

/// Everything needed to launch one job: job size, rendezvous bind address,
/// and the per-rank command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchSpec {
    /// Number of rank processes.
    pub n: usize,
    /// Address the bootstrap rendezvous binds (port 0 = ephemeral).
    pub bind: String,
    /// Program every rank executes.
    pub program: String,
    /// Arguments passed to every rank.
    pub args: Vec<String>,
    /// Extra environment variables for every rank (the `PHOTON_*` contract
    /// variables are always set and cannot be overridden here).
    pub env: Vec<(String, String)>,
}

impl LaunchSpec {
    /// A spec for `n` ranks of `program` with default bind address.
    pub fn new(n: usize, program: impl Into<String>) -> LaunchSpec {
        LaunchSpec {
            n,
            bind: "127.0.0.1:0".into(),
            program: program.into(),
            args: Vec::new(),
            env: Vec::new(),
        }
    }

    /// Parse the TOML subset shown in the module docs: top-level
    /// `key = value` pairs (`n`, `bind`, `program`, `args`) and an optional
    /// `[env]` table of string values. Comments (`#`) and blank lines are
    /// ignored. Anything else is an error — better to reject a spec than
    /// to silently drop half of it.
    pub fn from_toml(text: &str) -> Result<LaunchSpec, String> {
        let mut n: Option<usize> = None;
        let mut bind = "127.0.0.1:0".to_string();
        let mut program: Option<String> = None;
        let mut args: Vec<String> = Vec::new();
        let mut env: Vec<(String, String)> = Vec::new();
        let mut in_env = false;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[env]" {
                in_env = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {}: unknown section {line}", ln + 1));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", ln + 1))?;
            let (key, value) = (key.trim(), value.trim());
            if in_env {
                env.push((key.to_string(), parse_string(value, ln)?));
                continue;
            }
            match key {
                "n" => {
                    n = Some(
                        value.parse().map_err(|_| format!("line {}: n must be a count", ln + 1))?,
                    )
                }
                "bind" => bind = parse_string(value, ln)?,
                "program" => program = Some(parse_string(value, ln)?),
                "args" => args = parse_string_array(value, ln)?,
                other => return Err(format!("line {}: unknown key `{other}`", ln + 1)),
            }
        }
        let n = n.ok_or("spec missing `n`")?;
        if n == 0 {
            return Err("spec: n must be at least 1".into());
        }
        let program = program.ok_or("spec missing `program`")?;
        Ok(LaunchSpec { n, bind, program, args, env })
    }
}

fn parse_string(v: &str, ln: usize) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("line {}: expected a double-quoted string, got {v}", ln + 1))
    }
}

fn parse_string_array(v: &str, ln: usize) -> Result<Vec<String>, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("line {}: expected [\"...\", ...]", ln + 1))?
        .trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner.split(',').map(|item| parse_string(item, ln)).collect()
}

/// Launch the job and wait for every rank.
///
/// Returns the job's exit code: 0 when every rank (and the rendezvous)
/// succeeded, otherwise the first rank's failing code (or 1 for
/// signal-killed ranks and bootstrap failures). The rendezvous thread is
/// deliberately *not* joined when ranks already failed — it may be blocked
/// in `accept` forever if a rank died before connecting.
pub fn launch(spec: &LaunchSpec) -> Result<i32, String> {
    let server = BootstrapServer::bind(&spec.bind)
        .map_err(|e| format!("bootstrap bind {}: {e}", spec.bind))?;
    let addr = server.local_addr().map_err(|e| format!("bootstrap addr: {e}"))?.to_string();
    let n = spec.n;
    let rendezvous = std::thread::spawn(move || server.run(n));

    let mut children: Vec<Child> = Vec::with_capacity(n);
    for rank in 0..n {
        let mut cmd = Command::new(&spec.program);
        cmd.args(&spec.args)
            .envs(spec.env.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .env(ENV_RANK, rank.to_string())
            .env(ENV_NRANKS, n.to_string())
            .env(ENV_BOOTSTRAP, &addr);
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(e) => {
                // A rank that never started dooms the rendezvous; reap what
                // was already spawned rather than leaking processes.
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(format!("spawn rank {rank} ({}): {e}", spec.program));
            }
        }
    }

    let mut code = 0i32;
    for (rank, mut child) in children.into_iter().enumerate() {
        let status = child.wait().map_err(|e| format!("wait rank {rank}: {e}"))?;
        if !status.success() && code == 0 {
            code = status.code().unwrap_or(1);
            eprintln!("photon-launch: rank {rank} exited with {status}");
        }
    }
    if code == 0 {
        // All ranks succeeded, so the rendezvous must have completed too;
        // surface its verdict (a protocol failure here means the job only
        // *looked* healthy). Ranks that exited cleanly without ever
        // connecting leave the server blocked in accept — bound the wait
        // instead of joining into a hang.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !rendezvous.is_finished() {
            if std::time::Instant::now() >= deadline {
                return Err("ranks exited without completing the bootstrap rendezvous".into());
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        match rendezvous.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => return Err(format!("bootstrap rendezvous failed: {e}")),
            Err(_) => return Err("bootstrap rendezvous panicked".into()),
        }
    }
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_subset_round_trips() {
        let spec = LaunchSpec::from_toml(
            r#"
            # a job
            n = 4
            bind = "127.0.0.1:0"   # ephemeral
            program = "target/debug/examples/pingpong"
            args = ["--iters", "100"]

            [env]
            RUST_BACKTRACE = "1"
            "#,
        )
        .unwrap();
        assert_eq!(spec.n, 4);
        assert_eq!(spec.bind, "127.0.0.1:0");
        assert_eq!(spec.program, "target/debug/examples/pingpong");
        assert_eq!(spec.args, vec!["--iters".to_string(), "100".into()]);
        assert_eq!(spec.env, vec![("RUST_BACKTRACE".to_string(), "1".to_string())]);
    }

    #[test]
    fn toml_defaults_and_empty_args() {
        let spec = LaunchSpec::from_toml("n = 2\nprogram = \"/bin/true\"\nargs = []\n").unwrap();
        assert_eq!(spec.bind, "127.0.0.1:0");
        assert!(spec.args.is_empty() && spec.env.is_empty());
    }

    #[test]
    fn toml_rejects_malformed_specs() {
        for (bad, why) in [
            ("program = \"x\"", "missing n"),
            ("n = 0\nprogram = \"x\"", "zero ranks"),
            ("n = 2", "missing program"),
            ("n = 2\nprogram = x", "unquoted string"),
            ("n = 2\nprogram = \"x\"\nargs = \"y\"", "args not an array"),
            ("n = 2\nprogram = \"x\"\nbogus = 1", "unknown key"),
            ("n = 2\nprogram = \"x\"\n[network]", "unknown section"),
            ("n = 2\nprogram = \"x\"\njust-a-word", "not key=value"),
        ] {
            assert!(LaunchSpec::from_toml(bad).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn launch_propagates_child_exit_codes() {
        // Ranks that never join the rendezvous still get reaped, and the
        // first failing code wins.
        let mut spec = LaunchSpec::new(2, "/bin/sh");
        spec.args = vec!["-c".into(), "exit 3".into()];
        assert_eq!(launch(&spec).unwrap(), 3);

        let mut ok = LaunchSpec::new(2, "/bin/sh");
        // Trivial ranks that skip the rendezvous would leave it pending, so
        // run a real no-op *through* the environment contract instead:
        // assert the contract variables are present, then exit 0. The
        // rendezvous is left un-joined by design in the failure path; here
        // all ranks "succeed" without connecting, which `launch` must
        // detect as a bootstrap failure rather than report success.
        ok.args = vec!["-c".into(), "test -n \"$PHOTON_RANK\" -a -n \"$PHOTON_BOOTSTRAP\"".into()];
        let r = launch(&ok);
        assert!(r.is_err(), "all-ranks-ok without rendezvous must fail, got {r:?}");
    }

    #[test]
    fn launch_reports_unspawnable_program() {
        let spec = LaunchSpec::new(1, "/definitely/not/a/real/binary");
        assert!(launch(&spec).unwrap_err().contains("spawn rank 0"));
    }
}
