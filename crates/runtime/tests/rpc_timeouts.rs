//! Timeout-path classification for RPCs that never get a reply, end to end
//! through the runtime stack: a stuck handler vs a dead server vs a
//! partitioned link must resolve to *different* typed errors —
//! [`PhotonError::RpcTimeout`] (outcome unknown), [`PhotonError::RpcFailed`]
//! (server dead: a verdict), and plain [`PhotonError::Timeout`] for
//! Photon-core waits (`wait_local_for` / `wait_completion_from`) that expire
//! while the RPC is wedged — with retry counters matching the fault plan.

use photon_core::{PeerHealthState, PhotonConfig, PhotonError};
use photon_fabric::{NetworkModel, VTime, Window};
use photon_runtime::rpc::kv::{serve_kv, KvPut};
use photon_runtime::rpc::RpcMethod;
use photon_runtime::{ActionRegistry, RpcOptions, RtConfig, RtError, RuntimeCluster};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

fn boot(n: usize) -> RuntimeCluster {
    RuntimeCluster::new(n, NetworkModel::ib_fdr(), RtConfig::default(), ActionRegistry::new())
}

/// A method whose handler blocks until the test releases it: the reply
/// exists but arrives after every deadline — the "never gets a reply" case
/// with the server perfectly healthy.
struct Stuck;
impl RpcMethod for Stuck {
    const NAME: &'static str = "stuck";
    type Req = u64;
    type Rep = u64;
}

/// A latch the stuck handler parks on.
#[derive(Default)]
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }
}

fn serve_stuck(c: &RuntimeCluster, rank: usize) -> Arc<Latch> {
    let latch = Arc::new(Latch::default());
    let l = Arc::clone(&latch);
    c.node(rank).rpc_serve::<Stuck>(move |v| {
        l.wait();
        Ok(v)
    });
    latch
}

#[test]
fn healthy_server_without_reply_is_rpc_timeout_with_full_budget() {
    let c = boot(2);
    let latch = serve_stuck(&c, 1);
    let client = c.node(0).rpc_client(1);
    let opts = RpcOptions::at_least_once().with_timeout(Duration::from_millis(10)).with_attempts(3);
    let err = client.call::<Stuck>(&7, opts).unwrap_err();
    match err {
        RtError::Photon(PhotonError::RpcTimeout { method, attempts }) => {
            assert_eq!(method, "stuck");
            assert_eq!(attempts, 3, "the whole retry budget must burn before giving up");
        }
        other => panic!("expected RpcTimeout, got {other:?}"),
    }
    // Counters tell the same story: one call, three attempts, two retries,
    // one timeout — and no death verdict, because the server is healthy.
    let s = c.node(0).rpc_stats();
    assert_eq!((s.calls, s.attempts, s.retries), (1, 3, 2));
    assert_eq!((s.timeouts, s.failed_dead), (1, 0));
    assert_eq!(c.node(0).photon().peer_health(1).unwrap(), PeerHealthState::Healthy);
    latch.release();
    c.shutdown();
}

#[test]
fn at_most_once_retries_of_a_stuck_call_never_reexecute() {
    let c = boot(2);
    let latch = serve_stuck(&c, 1);
    let client = c.node(0).rpc_client(1);
    let opts = RpcOptions::at_most_once().with_timeout(Duration::from_millis(10)).with_attempts(3);
    let err = client.call::<Stuck>(&7, opts).unwrap_err();
    assert!(
        matches!(err, RtError::Photon(PhotonError::RpcTimeout { .. })),
        "stuck-but-healthy must classify as timeout, got {err:?}"
    );
    // All retries hit the in-flight entry in the dedup window: exactly one
    // handler execution, duplicates suppressed without a reply.
    let s = c.node(1).rpc_stats();
    assert_eq!(s.srv_executed, 1);
    assert!(
        s.srv_dup_inflight >= 1,
        "retries must be absorbed as in-flight duplicates (saw {})",
        s.srv_dup_inflight
    );
    latch.release();
    c.shutdown();
}

#[test]
fn dead_server_resolves_as_rpc_failed_with_retry_audit() {
    let c = boot(2);
    serve_kv(c.node(1));
    c.photon().fabric().switch().faults().kill_node_at(1, VTime(0));
    let client = c.node(0).rpc_client(1);
    let opts = RpcOptions::at_least_once().with_timeout(Duration::from_millis(5)).with_attempts(3);
    let err = client.call::<KvPut>(&(b"k".to_vec(), b"v".to_vec(), 1), opts).unwrap_err();
    match err {
        RtError::Photon(PhotonError::RpcFailed { method, reason }) => {
            assert_eq!(method, "kv.put");
            assert!(reason.contains("dead after 3 attempt(s)"), "{reason}");
        }
        other => panic!("expected RpcFailed, got {other:?}"),
    }
    let s = c.node(0).rpc_stats();
    assert_eq!((s.attempts, s.retries), (3, 2));
    assert_eq!((s.failed_dead, s.timeouts), (1, 0), "death is a verdict, not a timeout");
    assert_eq!(c.node(0).photon().peer_health(1).unwrap(), PeerHealthState::Dead);
    c.shutdown();
}

#[test]
fn partition_that_heals_lets_the_call_land_exactly_once() {
    let c = boot(2);
    let store = serve_kv(c.node(1));
    // Same regime as the core healing test: a 400us window that the health
    // machine's backoff probes cross well inside the death budget.
    let t0 = c.node(0).photon().now().as_nanos();
    c.photon().fabric().switch().faults().partition_during(
        0,
        1,
        Window::new(VTime(t0), VTime(t0 + 400_000)),
    );
    let client = c.node(0).rpc_client(1);
    let opts = RpcOptions::at_most_once().with_timeout(Duration::from_millis(50)).with_attempts(6);
    client.call::<KvPut>(&(b"k".to_vec(), b"v".to_vec(), 9), opts).unwrap();
    assert_eq!(store.apply_count(9), 1, "healed retries must apply exactly once");
    assert!(
        c.node(0).photon().now().as_nanos() >= t0 + 400_000,
        "success cannot precede the partition window's end"
    );
    let ps = c.node(0).photon().stats();
    assert!(ps.peers_suspected >= 1, "the partition must trip the detector");
    assert_eq!(ps.peers_dead, 0);
    assert_eq!(c.node(0).photon().peer_health(1).unwrap(), PeerHealthState::Healthy);
    c.shutdown();
}

#[test]
fn permanent_partition_evicts_and_never_applies() {
    let c = boot(2);
    let store = serve_kv(c.node(1));
    c.photon().fabric().switch().faults().partition_during(0, 1, Window::ALWAYS);
    let client = c.node(0).rpc_client(1);
    let opts = RpcOptions::at_most_once().with_timeout(Duration::from_millis(5)).with_attempts(3);
    let err = client.call::<KvPut>(&(b"k".to_vec(), b"v".to_vec(), 5), opts).unwrap_err();
    match err {
        RtError::Photon(PhotonError::RpcFailed { reason, .. }) => {
            assert!(reason.contains("dead"), "probe-budget exhaustion evicts: {reason}");
        }
        other => panic!("expected RpcFailed after eviction, got {other:?}"),
    }
    assert_eq!(c.node(0).rpc_stats().failed_dead, 1);
    // The request never crossed the cut: nothing may have applied.
    assert_eq!(store.apply_count(5), 0);
    assert!(store.is_empty());
    c.shutdown();
}

#[test]
fn core_waits_classify_as_timeout_while_an_rpc_is_wedged() {
    // While an RPC is stuck awaiting a reply that never comes, app-level
    // Photon waits on the same node must expire as plain `Timeout` — a
    // different error than the RPC's own classification, so callers can
    // tell "my wait expired" from "my invocation's outcome is unknown".
    let cfg = RtConfig {
        photon: PhotonConfig { wait_timeout_secs: 1, ..PhotonConfig::default() },
        ..RtConfig::default()
    };
    let c = RuntimeCluster::new(2, NetworkModel::ib_fdr(), cfg, ActionRegistry::new());
    let latch = serve_stuck(&c, 1);
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            let client = c.node(0).rpc_client(1);
            let opts = RpcOptions::at_least_once()
                .with_timeout(Duration::from_millis(20))
                .with_attempts(2);
            client.call::<Stuck>(&1, opts)
        });
        let p0 = c.node(0).photon();
        // A rid nothing will ever complete: bounded wait, typed timeout,
        // operation left pending.
        let e = p0.wait_local_for(0xBEEF, Duration::from_millis(25)).unwrap_err();
        assert_eq!(e, PhotonError::Timeout { what: "local completion", rid: Some(0xBEEF) });
        // Remote-completion wait on the silent server: same classification
        // (RPC parcels ride the eager path; no PWC completion ever comes).
        let e = p0.wait_completion_from(1).unwrap_err();
        assert_eq!(e, PhotonError::Timeout { what: "remote completion from peer", rid: None });
        let rpc_err = handle.join().expect("rpc thread").unwrap_err();
        assert!(
            matches!(rpc_err, RtError::Photon(PhotonError::RpcTimeout { .. })),
            "the wedged RPC itself classifies as RpcTimeout, got {rpc_err:?}"
        );
    });
    latch.release();
    c.shutdown();
}
