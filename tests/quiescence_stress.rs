//! Stress the termination-detection machinery: repeated quiescence with
//! racing parcel trees, coalescing, and collectives in the mix. This is the
//! regression net for ordering races between concurrent probers.

use photon::core::ReduceOp;
use photon::fabric::NetworkModel;
use photon::runtime::{ActionRegistry, RtConfig, RuntimeCluster};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn repeated_quiescence_with_racing_trees() {
    let mut reg = ActionRegistry::new();
    let leaves = Arc::new(AtomicU64::new(0));
    let leaves2 = Arc::clone(&leaves);
    let fan_id = Arc::new(AtomicU32::new(0));
    let fan_id2 = Arc::clone(&fan_id);
    let fan = reg.register("fan", move |ctx, payload| {
        let ttl = payload[0];
        if ttl == 0 {
            leaves2.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let id = fan_id2.load(Ordering::Relaxed);
        let n = ctx.size();
        ctx.send_parcel((ctx.rank() + 1) % n, id, &[ttl - 1]).unwrap();
        ctx.send_parcel((ctx.rank() + 2) % n, id, &[ttl - 1]).unwrap();
        None
    });
    fan_id.store(fan, Ordering::Relaxed);
    let n = 4;
    let cfg = RtConfig { workers: 2, coalesce_max: 8, ..RtConfig::default() };
    let c = RuntimeCluster::new(n, NetworkModel::ib_fdr(), cfg, reg);
    let rounds = 8u64;
    std::thread::scope(|s| {
        for i in 0..n {
            let c = &c;
            let leaves = &leaves;
            s.spawn(move || {
                let node = c.node(i);
                for round in 1..=rounds {
                    // Every rank seeds a tree every round (racing trees).
                    node.send_parcel((i + round as usize) % n, fan, &[6]).unwrap();
                    node.quiescence().unwrap();
                    // Exactly round * n * 2^6 leaves must have run globally.
                    let mut v = [leaves.load(Ordering::Relaxed)];
                    node.photon().allreduce_u64(&mut v, ReduceOp::Max).unwrap();
                    assert_eq!(v[0], round * n as u64 * 64, "round {round} rank {i}");
                }
            });
        }
    });
    c.shutdown();
}

#[test]
fn quiescence_with_continuations_and_rendezvous_parcels() {
    // Large parcels (rendezvous path) and continuation replies both count
    // toward quiescence; nothing may be left dangling.
    let mut reg = ActionRegistry::new();
    let sum = reg.register("sum", |_ctx, payload| {
        let s: u64 = payload.iter().map(|&b| b as u64).sum();
        Some(s.to_le_bytes().to_vec())
    });
    let n = 3;
    let c = RuntimeCluster::new(n, NetworkModel::ib_fdr(), RtConfig::default(), reg);
    std::thread::scope(|s| {
        for i in 0..n {
            let c = &c;
            s.spawn(move || {
                let node = c.node(i);
                let payload = vec![1u8; 32 * 1024]; // rendezvous-sized
                let mut futs = Vec::new();
                for j in 0..n {
                    let (lco, fut) = node.new_future();
                    node.send_parcel_with_cont(j, sum, &payload, lco).unwrap();
                    futs.push(fut);
                }
                node.quiescence().unwrap();
                // After quiescence every continuation must already be set.
                for fut in futs {
                    assert!(fut.is_set(), "dangling continuation after quiescence");
                    assert_eq!(u64::from_le_bytes(fut.wait().try_into().unwrap()), 32 * 1024);
                }
            });
        }
    });
    c.shutdown();
}
