//! Cross-crate integration: middleware, baseline, and runtime driven
//! together in realistic multi-rank scenarios.

use photon::core::{PhotonCluster, PhotonConfig, ReduceOp};
use photon::fabric::NetworkModel;
use photon::msg::{MsgCluster, MsgConfig};
use photon::runtime::{ActionRegistry, RtConfig, RuntimeCluster};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn photon_ring_pass_the_token() {
    // A token circles a 6-rank ring twice via PWC; each rank increments it.
    let n = 6;
    let laps = 2;
    let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
    let bufs: Vec<_> = (0..n).map(|i| c.rank(i).register_buffer(8).unwrap()).collect();
    let descs: Vec<_> = bufs.iter().map(|b| b.descriptor()).collect();
    std::thread::scope(|s| {
        for i in 0..n {
            let c = &c;
            let bufs = &bufs;
            let descs = &descs;
            s.spawn(move || {
                let p = c.rank(i);
                let next = (i + 1) % n;
                for lap in 0..laps {
                    if !(i == 0 && lap == 0) {
                        let ev =
                            p.wait_completion_matching(photon::core::ProbeFlags::Remote).unwrap();
                        assert_eq!(ev.peer, (i + n - 1) % n);
                    }
                    if i == n - 1 && lap == laps - 1 {
                        break; // token retired
                    }
                    let token = bufs[i].read_u64(0) + 1;
                    bufs[i].write_u64(0, token);
                    p.put_with_completion(next, &bufs[i], 0, 8, &descs[next], 0, 1, 1).unwrap();
                    p.wait_local(1).unwrap();
                }
            });
        }
    });
    // Every rank bumps once per lap except rank n-1 on the final lap, which
    // retires the token: 2n - 1 increments in total.
    assert_eq!(bufs[n - 1].read_u64(0), (2 * n - 1) as u64);
}

#[test]
fn photon_and_baseline_agree_on_payloads() {
    // The same scatter/gather computed through both stacks must match.
    let n = 4;
    let pc = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
    let mc = MsgCluster::new(n, NetworkModel::ib_fdr(), MsgConfig::default());
    let compute = |rank: usize| -> Vec<u8> { (0..64).map(|k| (rank * 31 + k) as u8).collect() };

    // Photon: alltoall of 64-byte blocks.
    let mut photon_out: Vec<Vec<u8>> = vec![Vec::new(); n];
    std::thread::scope(|s| {
        let out: Vec<_> = (0..n)
            .map(|i| {
                let pc = &pc;
                s.spawn(move || {
                    let p = pc.rank(i);
                    let send: Vec<u8> = (0..n).flat_map(|_| compute(i)).collect();
                    let mut recv = vec![0u8; 64 * n];
                    p.alltoall(&send, &mut recv).unwrap();
                    recv
                })
            })
            .collect();
        for (i, h) in out.into_iter().enumerate() {
            photon_out[i] = h.join().unwrap();
        }
    });
    // Baseline: explicit sends.
    let mut msg_out: Vec<Vec<u8>> = vec![Vec::new(); n];
    std::thread::scope(|s| {
        let out: Vec<_> = (0..n)
            .map(|i| {
                let mc = &mc;
                s.spawn(move || {
                    let e = mc.rank(i);
                    for j in 0..n {
                        if j != i {
                            e.send(j, &compute(i), 500 + i as u64).unwrap();
                        }
                    }
                    let mut recv = vec![0u8; 64 * n];
                    recv[i * 64..(i + 1) * 64].copy_from_slice(&compute(i));
                    for j in 0..n {
                        if j != i {
                            let m = e.recv(Some(j), Some(500 + j as u64)).unwrap();
                            recv[j * 64..(j + 1) * 64].copy_from_slice(&m.data);
                        }
                    }
                    recv
                })
            })
            .collect();
        for (i, h) in out.into_iter().enumerate() {
            msg_out[i] = h.join().unwrap();
        }
    });
    assert_eq!(photon_out, msg_out);
}

#[test]
fn runtime_tree_spawn_with_reduction() {
    // Divide-and-conquer: a parcel tree fans out; leaves contribute to a
    // shared counter; the total must be exact.
    let mut reg = ActionRegistry::new();
    let count = Arc::new(AtomicU64::new(0));
    let count2 = Arc::clone(&count);
    let fan_id = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let fan_id2 = Arc::clone(&fan_id);
    let fan = reg.register("fan", move |ctx, payload| {
        let depth = payload[0];
        if depth == 0 {
            count2.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let n = ctx.size();
        let a = (ctx.rank() + 1) % n;
        let b = (ctx.rank() + n - 1) % n;
        let id = fan_id2.load(Ordering::Relaxed);
        ctx.send_parcel(a, id, &[depth - 1]).unwrap();
        ctx.send_parcel(b, id, &[depth - 1]).unwrap();
        None
    });
    fan_id.store(fan, Ordering::Relaxed);
    let c = RuntimeCluster::new(3, NetworkModel::ib_fdr(), RtConfig::default(), reg);
    let depth = 10u8;
    c.node(0).send_parcel(1, fan, &[depth]).unwrap();
    let expect = 1u64 << depth; // 2^depth leaves
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while count.load(Ordering::Relaxed) < expect {
        assert!(std::time::Instant::now() < deadline, "tree never completed");
        std::thread::yield_now();
    }
    assert_eq!(count.load(Ordering::Relaxed), expect);
    c.shutdown();
}

#[test]
fn runtime_gas_and_collectives_compose() {
    let c =
        RuntimeCluster::new(4, NetworkModel::ib_fdr(), RtConfig::default(), ActionRegistry::new());
    let arr = c.alloc_global_array(4).unwrap();
    std::thread::scope(|s| {
        for i in 0..4 {
            let c = &c;
            let arr = &arr;
            s.spawn(move || {
                let node = c.node(i);
                // Everyone writes its rank into its mirror slot on every peer.
                for j in 0..4 {
                    arr.put(node, j * 4 + i, (10 + i) as u64).unwrap();
                }
                node.barrier().unwrap();
                // Everyone reads everyone's slots one-sidedly.
                for j in 0..4 {
                    assert_eq!(arr.get(node, i * 4 + j).unwrap(), (10 + j) as u64);
                }
                // And an allreduce on top of the same Photon context.
                let mut v = vec![i as u64 + 1];
                node.photon().allreduce_u64(&mut v, ReduceOp::Sum).unwrap();
                assert_eq!(v[0], 10);
            });
        }
    });
    c.shutdown();
}

#[test]
fn chaotic_sssp_with_quiescence_and_coalescing() {
    // Miniature of examples/sssp.rs: asynchronous relaxation, coalesced
    // parcels, termination by global quiescence, verified against Dijkstra.
    use parking_lot::Mutex;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    const N: usize = 3;
    const V: usize = 300;
    const INF: u64 = u64::MAX;
    fn edges(v: usize, total: usize) -> Vec<(usize, u64)> {
        let mut rng = StdRng::seed_from_u64(0xE0 ^ v as u64);
        (0..4).map(|_| (rng.gen_range(0..total), rng.gen_range(1..8u64))).collect()
    }
    let dists: Arc<Vec<Mutex<Vec<u64>>>> =
        Arc::new((0..N).map(|_| Mutex::new(vec![INF; V])).collect());
    let mut reg = ActionRegistry::new();
    let rid = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let (d2, rid2) = (Arc::clone(&dists), Arc::clone(&rid));
    let relax = reg.register("relax", move |ctx, payload| {
        let v = u64::from_le_bytes(payload[0..8].try_into().unwrap()) as usize;
        let cand = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        let improved = {
            let mut d = d2[ctx.rank()].lock();
            if cand < d[v] {
                d[v] = cand;
                true
            } else {
                false
            }
        };
        if improved {
            let gv = ctx.rank() * V + v;
            for (t, w) in edges(gv, N * V) {
                let mut p = [0u8; 16];
                p[0..8].copy_from_slice(&((t % V) as u64).to_le_bytes());
                p[8..16].copy_from_slice(&(cand + w).to_le_bytes());
                ctx.send_parcel(t / V, rid2.load(Ordering::Relaxed), &p).unwrap();
            }
        }
        None
    });
    rid.store(relax, Ordering::Relaxed);
    let c = RuntimeCluster::new(
        N,
        NetworkModel::ib_fdr(),
        photon::runtime::RtConfig { workers: 1, coalesce_max: 16, ..Default::default() },
        reg,
    );
    std::thread::scope(|s| {
        for i in 0..N {
            let c = &c;
            s.spawn(move || {
                if i == 0 {
                    let mut p = [0u8; 16];
                    p[8..16].copy_from_slice(&0u64.to_le_bytes());
                    c.node(0).send_parcel(0, relax, &p).unwrap();
                }
                c.node(i).quiescence().unwrap();
            });
        }
    });
    // Dijkstra reference.
    let mut rd = vec![INF; N * V];
    rd[0] = 0;
    let mut heap = std::collections::BinaryHeap::from([std::cmp::Reverse((0u64, 0usize))]);
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if d > rd[v] {
            continue;
        }
        for (t, w) in edges(v, N * V) {
            if d + w < rd[t] {
                rd[t] = d + w;
                heap.push(std::cmp::Reverse((d + w, t)));
            }
        }
    }
    for (i, block) in dists.iter().enumerate() {
        let d = block.lock();
        for (lv, &got) in d.iter().enumerate() {
            assert_eq!(got, rd[i * V + lv], "vertex {}", i * V + lv);
        }
    }
    c.shutdown();
}

#[test]
fn mixed_traffic_pwc_rendezvous_collectives() {
    // Hammer one Photon cluster with all three traffic classes at once.
    let n = 3;
    let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
    std::thread::scope(|s| {
        for i in 0..n {
            let c = &c;
            s.spawn(move || {
                let p = c.rank(i);
                let next = (i + 1) % n;
                let prev = (i + n - 1) % n;
                let big = p.register_buffer(256 * 1024).unwrap();
                big.fill(i as u8);
                let landing = p.register_buffer(256 * 1024).unwrap();
                for round in 0..3u64 {
                    // Small PWC messages.
                    for k in 0..50 {
                        p.send(next, &[i as u8; 32], round * 100 + k).unwrap();
                    }
                    // A rendezvous transfer in parallel with consumption.
                    p.post_recv_buffer(prev, &landing, 0, 256 * 1024, round).unwrap();
                    p.send_rendezvous(next, &big, 0, 256 * 1024, round).unwrap();
                    for _ in 0..50 {
                        let ev =
                            p.wait_completion_matching(photon::core::ProbeFlags::Remote).unwrap();
                        assert_eq!(ev.peer, prev);
                        assert_eq!(ev.payload.unwrap(), vec![prev as u8; 32]);
                    }
                    p.wait_fin(prev, round).unwrap();
                    assert_eq!(landing.to_vec(0, 8), vec![prev as u8; 8]);
                    p.barrier().unwrap();
                }
            });
        }
    });
}
