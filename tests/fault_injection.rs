//! Fault-injection integration tests: performance faults must show up in
//! virtual time; resource faults must surface as errors, never corruption.

use photon::core::{PhotonCluster, PhotonConfig, PhotonError};
use photon::fabric::{Cluster, FabricError, NetworkModel};
use photon::msg::{MsgCluster, MsgConfig};

fn pingpong_ns(c: &PhotonCluster, iters: u64) -> u64 {
    let (p0, p1) = (c.rank(0), c.rank(1));
    let b0 = p0.register_buffer(8).unwrap();
    let b1 = p1.register_buffer(8).unwrap();
    let d0 = b0.descriptor();
    let d1 = b1.descriptor();
    c.reset_time();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..iters {
                p0.put_with_completion(1, &b0, 0, 8, &d1, 0, i, i).unwrap();
                p0.wait_completion_matching(photon::core::ProbeFlags::Remote).unwrap();
            }
        });
        s.spawn(|| {
            for i in 0..iters {
                p1.wait_completion_matching(photon::core::ProbeFlags::Remote).unwrap();
                p1.put_with_completion(0, &b1, 0, 8, &d0, 0, i, i).unwrap();
            }
        });
    });
    c.rank(0).now().as_nanos() / (2 * iters)
}

#[test]
fn degraded_link_shows_up_in_latency() {
    let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default());
    let base = pingpong_ns(&c, 20);
    c.fabric().switch().faults().degrade_link(0, 1, 5_000);
    c.fabric().switch().faults().degrade_link(1, 0, 5_000);
    let slow = pingpong_ns(&c, 20);
    assert!(slow >= base + 4_900, "5us of injected latency must appear: {base} -> {slow}");
    c.fabric().switch().faults().heal_link(0, 1);
    c.fabric().switch().faults().heal_link(1, 0);
    let healed = pingpong_ns(&c, 20);
    assert!(healed < base + 100, "healing restores latency: {base} -> {healed}");
}

#[test]
fn straggler_node_slows_collectives() {
    let coll = |straggle: bool| -> u64 {
        let c = PhotonCluster::new(4, NetworkModel::ib_fdr(), PhotonConfig::default());
        if straggle {
            c.fabric().switch().faults().straggle_node(2, 20_000);
        }
        std::thread::scope(|s| {
            for p in c.ranks() {
                s.spawn(move || {
                    for _ in 0..3 {
                        p.barrier().unwrap();
                    }
                });
            }
        });
        c.ranks().iter().map(|p| p.now().as_nanos()).max().unwrap()
    };
    let healthy = coll(false);
    let degraded = coll(true);
    assert!(
        degraded > healthy + 3 * 20_000,
        "every barrier waits for the straggler: {healthy} -> {degraded}"
    );
}

#[test]
fn jitter_perturbs_but_preserves_correctness() {
    let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default());
    c.fabric().switch().faults().set_jitter(500);
    let (p0, p1) = (c.rank(0), c.rank(1));
    let src = p0.register_buffer(1024).unwrap();
    let dst = p1.register_buffer(1024).unwrap();
    for round in 0..100u64 {
        src.write_u64(0, round);
        p0.put_with_completion(1, &src, 0, 1024, &dst.descriptor(), 0, round, round).unwrap();
        let ev = p1.wait_completion_matching(photon::core::ProbeFlags::Remote).unwrap();
        assert_eq!(ev.rid, round);
        assert_eq!(dst.read_u64(0), round, "jitter must never corrupt data");
    }
}

#[test]
fn registration_limit_surfaces_cleanly() {
    let fabric = Cluster::with_reg_limit(2, NetworkModel::ideal(), 4 << 20);
    let c = PhotonCluster::with_fabric(fabric, PhotonConfig::tiny());
    let p0 = c.rank(0);
    // Middleware regions already consumed part of the budget; a huge user
    // buffer must fail with the typed error and leave the context usable.
    let err = p0.register_buffer(64 << 20);
    assert!(matches!(err, Err(PhotonError::Fabric(FabricError::RegistrationLimit { .. }))));
    // Still functional afterwards.
    let small = p0.register_buffer(1024).unwrap();
    let dst = c.rank(1).register_buffer(1024).unwrap();
    p0.put_with_completion(1, &small, 0, 64, &dst.descriptor(), 0, 1, 1).unwrap();
    assert_eq!(
        c.rank(1).wait_completion_matching(photon::core::ProbeFlags::Remote).unwrap().rid,
        1
    );
    // Releasing buffers returns budget.
    p0.release_buffer(&small).unwrap();
    let again = p0.register_buffer(1024).unwrap();
    drop(again);
}

#[test]
fn baseline_also_respects_fault_plan() {
    let c = MsgCluster::new(2, NetworkModel::ib_fdr(), MsgConfig::default());
    let run = |c: &MsgCluster| -> u64 {
        c.reset_time();
        let (e0, e1) = (c.rank(0), c.rank(1));
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..10u64 {
                    e0.send(1, &[0u8; 8], i).unwrap();
                    e0.recv(Some(1), Some(i)).unwrap();
                }
            });
            s.spawn(|| {
                for i in 0..10u64 {
                    e1.recv(Some(0), Some(i)).unwrap();
                    e1.send(0, &[0u8; 8], i).unwrap();
                }
            });
        });
        c.rank(0).now().as_nanos()
    };
    let base = run(&c);
    c.fabric().switch().faults().degrade_link(0, 1, 10_000);
    let slow = run(&c);
    assert!(slow >= base + 9 * 10_000, "{base} -> {slow}");
}
