//! Stress and soak tests: sustained mixed traffic at scale, tiny-resource
//! configurations, and many-rank jobs.

use photon::core::{PhotonCluster, PhotonConfig, ReduceOp};
use photon::fabric::NetworkModel;
use photon::msg::{MsgCluster, MsgConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

#[test]
fn tiny_resources_sustained_flood() {
    // 8-slot ledgers and a 512-byte ring under 2000 mixed messages per
    // direction: every credit path wraps many times.
    let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::tiny());
    let (p0, p1) = (c.rank(0), c.rank(1));
    std::thread::scope(|s| {
        for (me, other) in [(p0, p1), (p1, p0)] {
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(me.rank() as u64);
                let mut expected: u64 = 0;
                let mut got: u64 = 0;
                let total = 2000u64;
                while expected < total || got < total {
                    if expected < total && rng.gen_bool(0.6) {
                        let len = rng.gen_range(0..60);
                        me.send(other.rank(), &vec![expected as u8; len], expected).unwrap();
                        expected += 1;
                    } else if got < total {
                        if let Some(ev) =
                            me.poll_completion(photon::core::ProbeFlags::Remote).unwrap()
                        {
                            assert_eq!(ev.rid, got, "in-order delivery per peer");
                            got += 1;
                        }
                    }
                }
            });
        }
    });
    assert!(p0.stats().credit_stalls > 0 || p1.stats().credit_stalls > 0);
}

#[test]
fn sixteen_ranks_all_to_all_pwc_storm() {
    let n = 16;
    let cfg = PhotonConfig {
        ledger_entries: 32,
        eager_ring_bytes: 8 * 1024,
        coll_slot_bytes: 1024,
        ..PhotonConfig::default()
    };
    let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), cfg);
    let per_pair = 40u64;
    std::thread::scope(|s| {
        for i in 0..n {
            let c = &c;
            s.spawn(move || {
                let p = c.rank(i);
                let mut sent = vec![0u64; n];
                let mut recvd = 0u64;
                let want = per_pair * (n as u64 - 1);
                let mut turn = 0usize;
                while sent.iter().sum::<u64>() < want || recvd < want {
                    let j = turn % n;
                    turn += 1;
                    if j != i && sent[j] < per_pair {
                        // Encode (src, seq) in the rid for verification.
                        let rid = ((i as u64) << 32) | sent[j];
                        if p.try_send(j, &[i as u8; 16], rid).unwrap() {
                            sent[j] += 1;
                        }
                    }
                    while let Some(r) = p.poll_completion(photon::core::ProbeFlags::Remote).unwrap()
                    {
                        assert_eq!((r.rid >> 32) as usize, r.peer);
                        assert_eq!(r.payload.unwrap(), vec![r.peer as u8; 16]);
                        recvd += 1;
                    }
                }
            });
        }
    });
    // Conservation: every rank sent and received exactly the same count.
    let total_remote: u64 = c.ranks().iter().map(|p| p.stats().remote_completions).sum();
    assert_eq!(total_remote, (n as u64) * per_pair * (n as u64 - 1));
}

#[test]
fn collectives_stress_many_generations() {
    let n = 5;
    let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
    std::thread::scope(|s| {
        for p in c.ranks() {
            s.spawn(move || {
                for round in 0..50u64 {
                    let mut v = vec![p.rank() as u64 + round];
                    p.allreduce_u64(&mut v, ReduceOp::Sum).unwrap();
                    let expect: u64 = (0..n as u64).map(|r| r + round).sum();
                    assert_eq!(v[0], expect, "round {round}");
                }
            });
        }
    });
}

#[test]
fn baseline_wildcard_storm() {
    // Many senders, one receiver matching with wildcards: ordering per
    // sender must hold even under wall-clock racing.
    let n = 5;
    let per_sender = 200u64;
    let c = MsgCluster::new(n, NetworkModel::ib_fdr(), MsgConfig::default());
    std::thread::scope(|s| {
        for i in 1..n {
            let c = &c;
            s.spawn(move || {
                let e = c.rank(i);
                for k in 0..per_sender {
                    let mut payload = vec![0u8; 12];
                    payload[0..4].copy_from_slice(&(i as u32).to_le_bytes());
                    payload[4..12].copy_from_slice(&k.to_le_bytes());
                    e.send(0, &payload, 1).unwrap();
                }
            });
        }
        s.spawn(|| {
            let e = c.rank(0);
            let mut next = vec![0u64; n];
            for _ in 0..per_sender * (n as u64 - 1) {
                let m = e.recv(None, Some(1)).unwrap();
                let src = u32::from_le_bytes(m.data[0..4].try_into().unwrap()) as usize;
                let k = u64::from_le_bytes(m.data[4..12].try_into().unwrap());
                assert_eq!(m.src, src);
                assert_eq!(k, next[src], "per-sender FIFO violated");
                next[src] += 1;
            }
        });
    });
}

#[test]
fn rendezvous_pipeline_many_transfers() {
    // Back-to-back tagged rendezvous transfers with payload verification.
    let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default());
    let (p0, p1) = (c.rank(0), c.rank(1));
    let len = 128 * 1024;
    let sbuf = p0.register_buffer(len).unwrap();
    let rbuf = p1.register_buffer(len).unwrap();
    std::thread::scope(|s| {
        s.spawn(|| {
            for t in 0..20u64 {
                sbuf.fill(t as u8);
                p0.send_rendezvous(1, &sbuf, 0, len, t).unwrap();
                // The receiver confirms consumption before we mutate sbuf.
                let ev = p0.wait_completion_matching(photon::core::ProbeFlags::Remote).unwrap();
                assert_eq!(ev.rid, t);
            }
        });
        s.spawn(|| {
            for t in 0..20u64 {
                p1.recv_rendezvous(0, &rbuf, 0, len, t).unwrap();
                assert_eq!(rbuf.to_vec(len - 16, 16), vec![t as u8; 16]);
                p1.send(0, &[], t).unwrap();
            }
        });
    });
}
