//! Determinism of the virtual-time model: causal-chain experiments must
//! produce byte-identical timings run-to-run (this is what makes the
//! figure harness reproducible).

use photon::core::{PhotonCluster, PhotonConfig};
use photon::fabric::NetworkModel;
use photon::msg::{MsgCluster, MsgConfig};

fn photon_pingpong(size: usize) -> u64 {
    let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default());
    let (p0, p1) = (c.rank(0), c.rank(1));
    let b0 = p0.register_buffer(size).unwrap();
    let b1 = p1.register_buffer(size).unwrap();
    let d0 = b0.descriptor();
    let d1 = b1.descriptor();
    c.reset_time();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..20u64 {
                p0.put_with_completion(1, &b0, 0, size, &d1, 0, i, i).unwrap();
                p0.wait_completion_matching(photon::core::ProbeFlags::Remote).unwrap();
            }
        });
        s.spawn(|| {
            for i in 0..20u64 {
                p1.wait_completion_matching(photon::core::ProbeFlags::Remote).unwrap();
                p1.put_with_completion(0, &b1, 0, size, &d0, 0, i, i).unwrap();
            }
        });
    });
    c.rank(0).now().as_nanos()
}

#[test]
fn photon_pingpong_is_deterministic() {
    for size in [8usize, 4096, 65536] {
        let a = photon_pingpong(size);
        let b = photon_pingpong(size);
        let c = photon_pingpong(size);
        assert_eq!(a, b, "size {size}");
        assert_eq!(b, c, "size {size}");
    }
}

#[test]
fn baseline_pingpong_is_deterministic() {
    let run = || {
        let c = MsgCluster::new(2, NetworkModel::ib_fdr(), MsgConfig::default());
        let (e0, e1) = (c.rank(0), c.rank(1));
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..20u64 {
                    e0.send(1, &[0u8; 64], i).unwrap();
                    e0.recv(Some(1), Some(i)).unwrap();
                }
            });
            s.spawn(|| {
                for i in 0..20u64 {
                    e1.recv(Some(0), Some(i)).unwrap();
                    e1.send(0, &[0u8; 64], i).unwrap();
                }
            });
        });
        c.rank(0).now().as_nanos()
    };
    assert_eq!(run(), run());
}

#[test]
fn collectives_are_deterministic() {
    let run = |n: usize| {
        let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
        std::thread::scope(|s| {
            for p in c.ranks() {
                s.spawn(move || {
                    for _ in 0..5 {
                        p.barrier().unwrap();
                    }
                });
            }
        });
        c.ranks().iter().map(|p| p.now().as_nanos()).max().unwrap()
    };
    for n in [2usize, 4, 8] {
        assert_eq!(run(n), run(n), "barrier timing for n={n}");
    }
}

#[test]
fn simtest_schedule_is_byte_deterministic() {
    // A generated simtest case is a pure function of (seed, case_id): two
    // runs must agree byte-for-byte on the trace CSVs, the per-rank stats
    // snapshots, and the case digest.
    use photon_simtest::{run_case, SimParams};
    for case in 0..3u64 {
        let a = run_case(0x0DE7_E121, case, &SimParams::smoke());
        let b = run_case(0x0DE7_E121, case, &SimParams::smoke());
        assert!(a.passed(), "case {case}: {:?}", a.violations);
        assert_eq!(a.trace_csv, b.trace_csv, "case {case}: trace CSV differs");
        assert_eq!(
            format!("{:?}", a.stats),
            format!("{:?}", b.stats),
            "case {case}: stats snapshots differ"
        );
        assert_eq!(a.digest, b.digest, "case {case}: digest differs");
    }
}

#[test]
fn simtest_campaign_digest_is_thread_count_independent() {
    // Campaign parallelism is across cases, never within one; the campaign
    // digest covers per-case digests in case-id order, so any --jobs level
    // must produce the identical value.
    use photon_simtest::{run_campaign, Campaign, CampaignOpts};
    let run = |jobs| {
        run_campaign(
            Campaign::Smoke,
            &CampaignOpts {
                cases: 10,
                seed: 0x0DE7_E122,
                jobs,
                shrink: false,
                corpus: None,
                progress_threads: 0,
            },
        )
    };
    let a = run(1);
    let b = run(4);
    assert!(a.passed(), "{}", a.summary());
    assert_eq!(a.digest, b.digest, "digest must not depend on worker count");
}

#[test]
fn reset_time_restores_origin() {
    let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default());
    let (p0, p1) = (c.rank(0), c.rank(1));
    let b0 = p0.register_buffer(8).unwrap();
    let b1 = p1.register_buffer(8).unwrap();
    p0.put_with_completion(1, &b0, 0, 8, &b1.descriptor(), 0, 1, 1).unwrap();
    p1.wait_completion_matching(photon::core::ProbeFlags::Remote).unwrap();
    assert!(p1.now().as_nanos() > 0);
    c.reset_time();
    assert_eq!(p0.now().as_nanos(), 0);
    assert_eq!(p1.now().as_nanos(), 0);
    // And the fabric's port calendars were cleared: a fresh op departs at 0.
    p0.put_with_completion(1, &b0, 0, 8, &b1.descriptor(), 0, 2, 2).unwrap();
    let ev = p1.wait_completion_matching(photon::core::ProbeFlags::Remote).unwrap();
    let m = NetworkModel::ib_fdr();
    // o + L + gap, plus 1 ns of producer staging memcpy (shifts departure)
    // and 1 ns of consumer copy-out, both for the 8-byte eager payload.
    assert_eq!(ev.ts.as_nanos(), m.send_overhead_ns + m.latency_ns + m.msg_gap_ns + 2);
}
