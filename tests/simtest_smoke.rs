//! Tier-1 gate: a bounded simtest smoke campaign inside `cargo test`.
//!
//! 200 seeded cases over 4–6-node clusters with mixed one-sided, two-sided,
//! collective and parcel traffic, ~40% of them under fault plans. Fixed
//! seed, bounded case sizes, parallel across cases — the whole campaign
//! stays well inside the tier-1 time budget while sweeping the protocol
//! state space far wider than the hand-written tests.
//!
//! On failure, `CampaignResult::summary()` (printed by the assert) carries a
//! one-line `SIMTEST_SEED=… SIMTEST_CASE=…` reproducer for each failing
//! case plus a shrunk schedule. See README, "Reproducing a simtest
//! failure".

use photon_core::PhotonConfig;
use photon_simtest::{run_campaign, run_schedule_cfg, Campaign, CampaignOpts, Schedule, SimParams};

#[test]
fn smoke_campaign_two_hundred_cases() {
    let opts = CampaignOpts {
        cases: 200,
        seed: 0x0707_0E57, // fixed: this exact sweep is the gate
        jobs: 8,
        shrink: true,
        corpus: None, // replay the committed corpus first
        progress_threads: 0,
    };
    let r = run_campaign(Campaign::Smoke, &opts);
    assert_eq!(r.cases_run, 200);
    assert!(r.passed(), "{}", r.summary());
}

#[test]
fn credits_campaign_under_tiny_windows() {
    // Every case on the tiny config: ledger/ring backpressure on each op.
    let opts = CampaignOpts {
        cases: 40,
        seed: 0x0707_0E58,
        jobs: 8,
        shrink: true,
        corpus: None,
        progress_threads: 0,
    };
    let r = run_campaign(Campaign::Credits, &opts);
    assert!(r.passed(), "{}", r.summary());
}

#[test]
fn crash_campaign_every_op_resolves() {
    // Peer-failure gate: every case kills a node and/or partitions a link
    // mid-traffic. The all-ops-resolve checker turns any hang into a named
    // violation; pending ops on a dead peer must surface as error
    // completions and survivors keep exactly-once + payload integrity.
    let opts = CampaignOpts {
        cases: 100,
        seed: 0xC1C5,
        jobs: 8,
        shrink: true,
        corpus: None,
        progress_threads: 0,
    };
    let r = run_campaign(Campaign::Crash, &opts);
    assert!(r.passed(), "{}", r.summary());
}

#[test]
fn mutation_smoke_credit_bug_is_caught() {
    // Mutation check for the checkers themselves: re-run generated credits
    // schedules with a deliberately broken credit-return path (the
    // `skip_credit_return_interval` test hook drops every return write).
    // The invariant suite must notice on schedules it passes when healthy.
    let mutate = |c: &mut PhotonConfig| c.skip_credit_return_interval = 1;
    let mut caught = 0u32;
    let mut eligible = 0u32;
    for case in 0..12u64 {
        let sched = Schedule::generate(0x0707_0E59, case, &SimParams::credits());
        let healthy = run_schedule_cfg(&sched, |_| {});
        if !healthy.passed() {
            continue; // only mutate schedules that are clean when healthy
        }
        eligible += 1;
        let mutated = run_schedule_cfg(&sched, mutate);
        if mutated.violations.iter().any(|v| v.contains("credit-return lost")) {
            caught += 1;
        }
    }
    assert!(eligible >= 8, "too few clean baseline schedules ({eligible})");
    assert!(
        caught >= eligible / 2,
        "checkers caught the credit bug in only {caught}/{eligible} schedules"
    );
}
