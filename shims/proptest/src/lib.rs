//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Provides seeded random-input testing with the same call shapes as the
//! real crate (`proptest!`, `TestRunner::run`, `prop_assert*`, `any`,
//! `collection::vec`, `option::of`, range and tuple strategies), minus
//! shrinking. Failures print a `PROPTEST_SEED` reproducer and are appended
//! to the committed corpus under `proptest-regressions/` at the workspace
//! root; every run replays the corpus first, so counterexamples are
//! preserved across contributors (same convention the simtest harness uses
//! for its own reproducer seeds).
//!
//! Case seeds are derived deterministically from the test's source file and
//! case index, so `cargo test` is reproducible run-to-run. Set
//! `PROPTEST_SEED=0x...` to replay one specific case,
//! `PROPTEST_CASES=n` to override the case count.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Produce one value from seeded entropy.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Produce one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// Strategy for any value of `T` (see [`crate::prelude::any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Vec`s with seeded lengths and elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Vectors of `elem`-generated values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Some`/`None` with equal probability.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Options of `inner`-generated values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    //! The case-driving runner and its persistence machinery.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;
    use std::io::Write;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::PathBuf;

    /// A test-case failure (produced by the `prop_assert*` macros).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Fail the current case with `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration (`Config { cases: 64, ..Config::default() }`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of fresh seeded cases to run (after corpus replay).
        pub cases: u32,
        /// Source file of the tests, set by the `proptest!` macro; enables
        /// the regression corpus.
        pub source_file: Option<&'static str>,
    }

    impl Default for Config {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
            Config { cases, source_file: None }
        }
    }

    /// A failed run: the seed, the generated value, and the reason.
    pub struct TestError(String);

    impl fmt::Debug for TestError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Drives strategies against a test closure with seeded entropy.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// A runner with the given configuration.
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// Run `test` against `cases` generated inputs (corpus seeds
        /// first). Returns the first failure, with a reproducer seed.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), TestError> {
            let corpus = self.corpus_path();
            // 1. Pinned reproduction via env var.
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                let seed = parse_seed(&seed).expect("PROPTEST_SEED must be a (0x-prefixed) u64");
                return self.run_one(strategy, &mut test, seed, &corpus);
            }
            // 2. Replay the committed corpus.
            for seed in read_corpus(corpus.as_deref()) {
                self.run_one(strategy, &mut test, seed, &corpus)?;
            }
            // 3. Fresh deterministic cases.
            let base = fnv1a(self.config.source_file.unwrap_or("").as_bytes());
            for case in 0..self.config.cases {
                self.run_one(
                    strategy,
                    &mut test,
                    base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    &corpus,
                )?;
            }
            Ok(())
        }

        fn run_one<S: Strategy>(
            &self,
            strategy: &S,
            test: &mut impl FnMut(S::Value) -> Result<(), TestCaseError>,
            seed: u64,
            corpus: &Option<PathBuf>,
        ) -> Result<(), TestError> {
            let mut rng = StdRng::seed_from_u64(seed);
            let value = strategy.generate(&mut rng);
            let desc = format!("{value:?}");
            let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
            let reason = match outcome {
                Ok(Ok(())) => return Ok(()),
                Ok(Err(e)) => e.0,
                Err(p) => panic_message(p),
            };
            if let Some(path) = corpus {
                persist_seed(path, seed);
            }
            Err(TestError(format!(
                "property failed: {reason}\n  input: {desc}\n  replay: PROPTEST_SEED={seed:#x} \
                 (persisted to {})",
                corpus
                    .as_deref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| "<no corpus; set source_file>".into()),
            )))
        }

        /// `proptest-regressions/<flattened source path>.txt` under the
        /// workspace root (found by walking up to `Cargo.lock`), or the
        /// `PROPTEST_REGRESSIONS` override.
        fn corpus_path(&self) -> Option<PathBuf> {
            let file = self.config.source_file?;
            let dir = match std::env::var_os("PROPTEST_REGRESSIONS") {
                Some(d) => PathBuf::from(d),
                None => workspace_root()?.join("proptest-regressions"),
            };
            let flat = file.trim_end_matches(".rs").replace(['/', '\\'], "__");
            Some(dir.join(format!("{flat}.txt")))
        }
    }

    fn workspace_root() -> Option<PathBuf> {
        let mut dir = std::env::current_dir().ok()?;
        loop {
            if dir.join("Cargo.lock").exists() {
                return Some(dir);
            }
            if !dir.pop() {
                return None;
            }
        }
    }

    fn parse_seed(s: &str) -> Option<u64> {
        let s = s.trim();
        if let Some(hex) = s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            s.parse().ok()
        }
    }

    fn read_corpus(path: Option<&std::path::Path>) -> Vec<u64> {
        let Some(path) = path else { return Vec::new() };
        let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
        text.lines()
            .filter_map(|l| l.trim().strip_prefix("cc "))
            .filter_map(|l| parse_seed(l.split_whitespace().next()?))
            .collect()
    }

    fn persist_seed(path: &std::path::Path, seed: u64) {
        if read_corpus(Some(path)).contains(&seed) {
            return;
        }
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let new = !path.exists();
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            if new {
                let _ = writeln!(
                    f,
                    "# Seeds for failure cases found by the proptest shim. It is\n\
                     # recommended to check this file in to source control so that\n\
                     # everyone who runs the test benefits from these saved cases."
                );
            }
            let _ = writeln!(f, "cc {seed:#x}");
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "test panicked".to_string()
        }
    }
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*`.

    pub use crate::strategy::{Any, Arbitrary, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The canonical strategy for "any value of `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Assert inside a property body; failing returns a
/// [`test_runner::TestCaseError`] from the enclosing closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            a, b, stringify!($a), stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` != `{:?}`: {}",
            a, b, format!($($fmt)*)
        );
    }};
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            a,
            b,
            stringify!($a),
            stringify!($b)
        );
    }};
}

/// Declare seeded property tests:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn roundtrip(x in any::<u64>(), v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert_eq!(decode(&encode(x, &v)), (x, v));
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $crate::test_runner::Config {
                source_file: Some(file!()),
                ..$crate::test_runner::Config::default()
            };
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner
                .run(&($($strat,)+), |($($arg,)+)| {
                    $body
                    Ok(())
                })
                .unwrap();
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{Config, TestRunner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let strat =
            (0u64..100, crate::collection::vec(any::<u8>(), 1..8), crate::option::of(1u8..=3));
        for _ in 0..200 {
            let (a, v, o) = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(a < 100);
            assert!((1..8).contains(&v.len()));
            if let Some(x) = o {
                assert!((1..=3).contains(&x));
            }
        }
    }

    #[test]
    fn runner_passes_good_property() {
        let mut runner = TestRunner::new(Config { cases: 64, source_file: None });
        runner
            .run(&(0u64..1000, 0u64..1000), |(a, b)| {
                prop_assert_eq!(a + b, b + a);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn runner_reports_failure_with_seed() {
        let mut runner = TestRunner::new(Config { cases: 256, source_file: None });
        let err = runner
            .run(&(0u64..1000,), |(a,)| {
                prop_assert!(a < 990, "found large value {}", a);
                Ok(())
            })
            .expect_err("property must fail within 256 cases");
        let msg = format!("{err:?}");
        assert!(msg.contains("PROPTEST_SEED="), "reproducer in message: {msg}");
        assert!(msg.contains("found large value"), "reason in message: {msg}");
    }

    #[test]
    fn runner_catches_panics() {
        let mut runner = TestRunner::new(Config { cases: 16, source_file: None });
        let err = runner
            .run(&(0u64..10,), |(a,)| {
                assert!(a > 100, "plain assert panics");
                Ok(())
            })
            .expect_err("panicking property must fail");
        assert!(format!("{err:?}").contains("plain assert"));
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(Config { cases: 16, source_file: None });
            runner
                .run(&(0u64..1_000_000,), |(a,)| {
                    out.push(a);
                    Ok(())
                })
                .unwrap();
            out
        };
        assert_eq!(collect(), collect(), "same seeds, same inputs");
    }

    proptest! {
        #[test]
        fn macro_form_works(x in any::<u32>(), v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(v.len() < 4);
            prop_assert_eq!(x as u64 + 1, u64::from(x) + 1);
            prop_assert_ne!(v.len(), 99);
        }
    }
}
