//! Offline shim for the subset of the `bytes` crate this workspace uses:
//! the immutable, cheaply cloneable [`Bytes`] buffer.
//!
//! Backed by `Arc<[u8]>`: clones are reference-counted (no copy), matching
//! the cost model the parcel layer relies on. Sub-slicing (`slice`) copies
//! instead of sharing — the workspace never sub-slices parcels on a hot
//! path.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation shared with others).
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy a sub-range out into a new buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.data[range])
    }

    /// Copy the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = Bytes::from(&b"hi"[..]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(c.len(), 2);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![9; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr(), "clone is refcounted");
    }

    #[test]
    fn slice_and_to_vec() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4]);
        assert_eq!(a.slice(1..3), Bytes::from(vec![1, 2]));
        assert_eq!(a.to_vec(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn debug_escapes() {
        let a = Bytes::from(&b"a\n"[..]);
        assert_eq!(format!("{a:?}"), "b\"a\\n\"");
    }
}
