//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range`, `gen_bool`, `fill_bytes`.
//!
//! `StdRng` is xoshiro256** seeded through SplitMix64 — a different stream
//! than the real crate's ChaCha12, but the workspace only relies on
//! *determinism* (same seed ⇒ same stream), never on specific values.
//! The stream is stable across platforms and releases of this shim; the
//! simtest reproducer convention (`SIMTEST_SEED`) depends on that.

/// Types that can construct themselves from entropy seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (the only constructor the workspace
    /// uses); must be deterministic.
    fn seed_from_u64(state: u64) -> Self;
}

/// Marker for types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Produce one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Produce one value uniformly distributed in the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro forbids the all-zero state
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut x = state;
            let s =
                [splitmix64(&mut x), splitmix64(&mut x), splitmix64(&mut x), splitmix64(&mut x)];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Debiased bounded sampling in `[0, bound)` (Lemire-style rejection).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty sample range");
    // Classic rejection: discard draws below 2^64 mod bound, so every
    // residue class is hit by the same number of accepted draws.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        if v >= threshold {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty sample range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn stream_is_pinned() {
        // The simtest reproducer convention depends on this stream never
        // changing; pin the first draws of a known seed.
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.gen::<u64>()).collect();
        assert_eq!(first, vec![11091344671253066420, 13793997310169335082, 1900383378846508768]);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..3);
            assert!(w < 3);
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = r.gen_range(1u8..=4);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let trues = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&trues), "p=0.5 roughly balanced: {trues}");
    }

    #[test]
    fn fill_bytes_fills() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
