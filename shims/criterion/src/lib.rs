//! Offline shim for the subset of `criterion` this workspace's benches use.
//!
//! A minimal wall-clock harness: adaptive iteration-count calibration, a
//! fixed measurement budget per benchmark, and mean/min ns-per-iteration
//! reporting to stdout. No statistical analysis, plots, or baselines — the
//! repo's real measurement story is the virtual-time experiment harness in
//! `photon-bench`; these wall-clock numbers are indicative only.
//!
//! When invoked by `cargo test` (bench binaries receive `--test`), each
//! benchmark body runs exactly once as a smoke check.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark (reported, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from a parameter only (group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    test_mode: bool,
}

impl Bencher {
    /// Run `routine` repeatedly and report its per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            println!("    (test mode: 1 iteration)");
            return;
        }
        // Calibrate: find an iteration count that takes ≳10ms.
        let mut n: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(10) || n >= 1 << 24 {
                break;
            }
            n = (n * 4).min(1 << 24);
        }
        // Measure: a handful of samples within a fixed budget.
        let mut best = f64::INFINITY;
        let mut total_ns = 0.0;
        let mut samples = 0u32;
        let budget = Instant::now() + Duration::from_millis(200);
        while samples < 3 || (Instant::now() < budget && samples < 20) {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let per = t0.elapsed().as_nanos() as f64 / n as f64;
            best = best.min(per);
            total_ns += per;
            samples += 1;
        }
        println!(
            "    {:>12.1} ns/iter (min {:>12.1} ns, {} x {} iters)",
            total_ns / samples as f64,
            best,
            samples,
            n
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim runs a fixed iteration
    /// count, so the requested sample size is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput (report-only).
    pub fn throughput(&mut self, t: Throughput) {
        let label = match t {
            Throughput::Bytes(b) => format!("{b} B/iter"),
            Throughput::Elements(e) => format!("{e} elems/iter"),
        };
        println!("  [{}] throughput: {label}", self.name);
    }

    /// Benchmark `routine` against a borrowed input.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        println!("  {}/{}", self.name, id.id);
        let mut b = Bencher { test_mode: self.test_mode };
        routine(&mut b, input);
        self
    }

    /// Benchmark a plain routine within the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        println!("  {}/{}", self.name, id.id);
        let mut b = Bencher { test_mode: self.test_mode };
        routine(&mut b);
        self
    }

    /// Finish the group (no-op beyond symmetry with the real API).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// The benchmark harness entry object.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Benchmark a single named routine.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: R,
    ) -> &mut Self {
        println!("  {name}");
        let mut b = Bencher { test_mode: self.test_mode };
        routine(&mut b);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { name, test_mode: self.test_mode, _criterion: self }
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0;
        c.bench_function("t", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1, "test mode runs the body once");
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(64));
        let mut count = 0;
        g.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| b.iter(|| count += n));
        g.finish();
        assert_eq!(count, 8);
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
    }
}
