//! Offline shim for the subset of `crossbeam` this workspace uses: the
//! work-stealing deque (`crossbeam::deque::{Injector, Worker, Stealer,
//! Steal}`).
//!
//! Backed by `Mutex<VecDeque>` — correct and contention-safe, not
//! lock-free. Adequate for the simulated-fabric workloads here; swap back
//! to the real crate when a registry is available if scheduler throughput
//! ever becomes the bottleneck.

pub mod deque {
    //! Mutex-backed work-stealing deque API.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Result of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// A race was lost; retry. (Never produced by this shim.)
        Retry,
    }

    impl<T> Steal<T> {
        /// True when the caller should retry the steal.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A FIFO queue for injecting work from outside the worker pool.
    #[derive(Debug)]
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Create an empty injector.
        pub fn new() -> Self {
            Injector { q: Mutex::new(VecDeque::new()) }
        }

        /// Push a task.
        pub fn push(&self, t: T) {
            self.q.lock().unwrap_or_else(PoisonError::into_inner).push_back(t);
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap_or_else(PoisonError::into_inner).is_empty()
        }

        /// Steal one task, moving a small batch into `dest`'s local deque.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.q.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            // Move up to half the queue (capped) into the destination,
            // mirroring the real crate's batching behaviour.
            let batch = (q.len() / 2).min(16);
            if batch > 0 {
                let mut dq = dest.q.lock().unwrap_or_else(PoisonError::into_inner);
                for _ in 0..batch {
                    if let Some(t) = q.pop_front() {
                        dq.push_back(t);
                    }
                }
            }
            Steal::Success(first)
        }
    }

    /// A worker-local deque (LIFO for the owner, FIFO for stealers).
    #[derive(Debug)]
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Create a LIFO worker deque.
        pub fn new_lifo() -> Self {
            Worker { q: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Push a task onto the owner end.
        pub fn push(&self, t: T) {
            self.q.lock().unwrap_or_else(PoisonError::into_inner).push_back(t);
        }

        /// Pop from the owner end (LIFO).
        pub fn pop(&self) -> Option<T> {
            self.q.lock().unwrap_or_else(PoisonError::into_inner).pop_back()
        }

        /// True when the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap_or_else(PoisonError::into_inner).is_empty()
        }

        /// A handle other workers use to steal from this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: Arc::clone(&self.q) }
        }
    }

    /// A steal handle for another worker's deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steal one task from the victim's FIFO end.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap_or_else(PoisonError::into_inner).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::*;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        let s = w.stealer();
        assert_eq!(s.steal().success(), Some(1), "stealers take the oldest");
        assert_eq!(w.pop(), Some(3), "owner takes the newest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_batches_into_worker() {
        let inj = Injector::new();
        for i in 0..40 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        let got = inj.steal_batch_and_pop(&w).success();
        assert_eq!(got, Some(0));
        assert!(!w.is_empty(), "a batch moved into the local deque");
        assert!(!inj.is_empty());
    }

    #[test]
    fn empty_steals_report_empty() {
        let inj: Injector<u32> = Injector::new();
        let w: Worker<u32> = Worker::new_lifo();
        assert!(inj.steal_batch_and_pop(&w).success().is_none());
        assert!(w.stealer().steal().success().is_none());
        assert!(!w.stealer().steal().is_retry());
    }
}
