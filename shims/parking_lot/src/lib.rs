//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Backed by `std::sync` primitives; lock poisoning is swallowed (like the
//! real parking_lot, a panicking holder does not poison the lock for other
//! threads). API-compatible for: `Mutex::{new, lock, try_lock}`,
//! `RwLock::{new, read, write}`, `Condvar::{new, wait, wait_for,
//! notify_one, notify_all}`.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds an `Option` so a condvar wait can
/// temporarily take the inner std guard and put a fresh one back.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the lock and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// [`Condvar::wait`] with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakeup() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock usable after a holder panicked");
    }
}
