//! Distributed breadth-first search over active messages.
//!
//! The irregular-application workload that motivates message-driven
//! runtimes: vertices are block-distributed, and edge relaxations travel as
//! parcels to the owner of the target vertex (no gather/scatter phases, no
//! two-sided choreography). Levels are synchronized with Photon allreduces;
//! termination is detected when a level discovers nothing new. The result
//! is verified against a single-process reference BFS.
//!
//! Demonstrates two runtime facilities built for exactly this workload:
//! **parcel coalescing** (tiny relaxations batched per destination) and
//! **global quiescence detection** (level synchronization without
//! hand-rolled completion counters).
//!
//! Run with: `cargo run --release --example bfs`

use parking_lot::Mutex;
use photon::core::ReduceOp;
use photon::fabric::NetworkModel;
use photon::runtime::{ActionRegistry, RtConfig, RuntimeCluster};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;

const RANKS: usize = 4;
const VERTS_PER_RANK: usize = 2000;
const DEGREE: usize = 8;
const UNSET: u32 = u32::MAX;

struct NodeState {
    dist: Mutex<Vec<u32>>,
    next_frontier: Mutex<Vec<u32>>, // local vertex ids discovered this level
}

/// Deterministic synthetic graph: out-edges of global vertex `v`.
fn edges_of(v: usize, total: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(0xB5F5 ^ v as u64);
    (0..DEGREE).map(|_| rng.gen_range(0..total)).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let total = RANKS * VERTS_PER_RANK;
    let states: Arc<Vec<NodeState>> = Arc::new(
        (0..RANKS)
            .map(|_| NodeState {
                dist: Mutex::new(vec![UNSET; VERTS_PER_RANK]),
                next_frontier: Mutex::new(Vec::new()),
            })
            .collect(),
    );

    let mut reg = ActionRegistry::new();
    let st = Arc::clone(&states);
    // relax(target_local_vertex, level): set distance if undiscovered.
    let relax = reg.register("relax", move |ctx, payload| {
        let v = u64::from_le_bytes(payload[0..8].try_into().unwrap()) as usize;
        let level = u64::from_le_bytes(payload[8..16].try_into().unwrap()) as u32;
        let s = &st[ctx.rank()];
        let mut dist = s.dist.lock();
        if dist[v] == UNSET {
            dist[v] = level;
            s.next_frontier.lock().push(v as u32);
        }
        None
    });

    let cluster = RuntimeCluster::new(
        RANKS,
        NetworkModel::ib_fdr(),
        RtConfig { workers: 1, coalesce_max: 32, ..RtConfig::default() },
        reg,
    );

    // Seed: global vertex 0 at level 0.
    states[0].dist.lock()[0] = 0;
    states[0].next_frontier.lock().push(0);

    let levels = std::thread::scope(|scope| -> usize {
        let handles: Vec<_> = (0..RANKS)
            .map(|i| {
                let cluster = &cluster;
                let states = &states;
                scope.spawn(move || {
                    let node = cluster.node(i);
                    let photon = node.photon();
                    let mut level = 0u32;
                    loop {
                        // Take this level's frontier.
                        let frontier: Vec<u32> =
                            std::mem::take(&mut *states[i].next_frontier.lock());
                        // Relax every out-edge with a parcel to the owner.
                        for &lv in &frontier {
                            let gv = i * VERTS_PER_RANK + lv as usize;
                            for tgt in edges_of(gv, RANKS * VERTS_PER_RANK) {
                                let owner = tgt / VERTS_PER_RANK;
                                let local = (tgt % VERTS_PER_RANK) as u64;
                                let mut payload = [0u8; 16];
                                payload[0..8].copy_from_slice(&local.to_le_bytes());
                                payload[8..16].copy_from_slice(&((level + 1) as u64).to_le_bytes());
                                node.send_parcel(owner, relax, &payload).unwrap();
                            }
                        }
                        // Level synchronization: global quiescence means
                        // every relaxation (including coalesced tails) ran.
                        node.quiescence().unwrap();
                        // Anything discovered anywhere?
                        let mut found = [states[i].next_frontier.lock().len() as u64];
                        photon.allreduce_u64(&mut found, ReduceOp::Sum).unwrap();
                        level += 1;
                        if found[0] == 0 {
                            return level as usize;
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).max().unwrap()
    });

    // ----------------- reference BFS, single process ----------------------
    let mut ref_dist = vec![UNSET; total];
    ref_dist[0] = 0;
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(v) = queue.pop_front() {
        for t in edges_of(v, total) {
            if ref_dist[t] == UNSET {
                ref_dist[t] = ref_dist[v] + 1;
                queue.push_back(t);
            }
        }
    }

    let mut reached = 0usize;
    for (i, s) in states.iter().enumerate() {
        let dist = s.dist.lock();
        for (lv, &d) in dist.iter().enumerate() {
            assert_eq!(
                d,
                ref_dist[i * VERTS_PER_RANK + lv],
                "vertex {} disagrees with the reference",
                i * VERTS_PER_RANK + lv
            );
            if d != UNSET {
                reached += 1;
            }
        }
    }

    let t_ns = cluster.nodes().iter().map(|n| n.photon().now().as_nanos()).max().unwrap();
    println!("BFS over {total} vertices x degree {DEGREE} on {RANKS} ranks");
    println!("reached {reached} vertices in {levels} levels");
    println!("virtual time: {:.2} ms", t_ns as f64 / 1e6);
    let edges = (reached * DEGREE) as f64;
    println!("traversal rate: {:.2} Medges/s", edges / (t_ns as f64 / 1e9) / 1e6);
    cluster.shutdown();
    println!("bfs OK (matches reference)");
    Ok(())
}
