//! Quickstart: the core Photon vocabulary in one file.
//!
//! Demonstrates, on a 2-"node" simulated FDR InfiniBand fabric:
//!   1. buffer registration and descriptor exchange,
//!   2. put-with-completion (local + remote completion ids),
//!   3. get-with-completion,
//!   4. destination-less sends (the active-message primitive),
//!   5. the legacy rendezvous protocol for a large transfer,
//!   6. a barrier.
//!
//! Run with: `cargo run --example quickstart`

use photon::core::{PhotonCluster, PhotonConfig, ProbeFlags};
use photon::fabric::NetworkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. a two-rank job over modeled FDR InfiniBand -------------------
    let cluster = PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default());
    let p0 = cluster.rank(0).clone();
    let p1 = cluster.rank(1).clone();

    // Registered buffers; descriptors would normally be exchanged in-band
    // or via the launcher. Here both ranks live in one process.
    let src = p0.register_buffer(4096)?;
    let dst = p1.register_buffer(4096)?;
    let dst_desc = dst.descriptor();

    // Drive rank 1 from its own thread, like a remote node.
    let peer = std::thread::spawn(move || -> Result<(), photon::core::PhotonError> {
        // --- remote side: discover completions by probing ----------------
        let ev = p1.wait_completion_matching(ProbeFlags::Remote)?;
        println!("[rank1] remote completion rid={} size={} at t={}", ev.rid, ev.size, ev.ts);
        assert_eq!(ev.rid, 99);
        // Eager puts land at probe time; tell rank 0 the data is visible.
        p1.send(0, b"", 1)?;

        // A destination-less message arrives with its payload.
        let ev = p1.wait_completion_matching(ProbeFlags::Remote)?;
        println!(
            "[rank1] message rid={} payload={:?}",
            ev.rid,
            String::from_utf8_lossy(ev.payload.as_deref().unwrap_or(&[]))
        );

        // --- rendezvous receive ------------------------------------------
        let big = p1.register_buffer(1 << 20)?;
        p1.recv_rendezvous(0, &big, 0, 1 << 20, /*tag=*/ 7)?;
        println!("[rank1] rendezvous landed, first byte = {:#x}", big.to_vec(0, 1)[0]);

        p1.barrier()?;
        Ok(())
    });

    // --- 2. put-with-completion ------------------------------------------
    src.write_at(0, b"one-sided hello");
    p0.put_with_completion(1, &src, 0, 15, &dst_desc, 0, /*local*/ 11, /*remote*/ 99)?;
    let c = p0.wait_completion()?;
    assert!(c.is_local(), "unexpected completion {c:?}");
    println!("[rank0] local completion rid={} at t={}", c.rid, c.ts);

    // --- 3. get-with-completion ------------------------------------------
    p0.wait_completion_matching(ProbeFlags::Remote)?; // rank 1's visibility ack for the eager put
    let pulled = p0.register_buffer(15)?;
    p0.get_with_completion(1, &pulled, 0, 15, &dst_desc, 0, 12)?;
    p0.wait_local(12)?;
    println!("[rank0] got back: {}", String::from_utf8_lossy(&pulled.to_vec(0, 15)));
    assert_eq!(pulled.to_vec(0, 15), b"one-sided hello");

    // --- 4. a destination-less send (parcel-style) ------------------------
    p0.send(1, b"probe me", 42)?;

    // --- 5. rendezvous send of 1 MiB --------------------------------------
    let big = p0.register_buffer(1 << 20)?;
    big.fill(0xAB);
    p0.send_rendezvous(1, &big, 0, 1 << 20, /*tag=*/ 7)?;

    // --- 6. synchronize and report ----------------------------------------
    p0.barrier()?;
    peer.join().unwrap()?;

    println!("[rank0] stats: {:?}", p0.stats());
    println!("[rank0] virtual time elapsed: {}", p0.now());
    assert!(p0.poll_completion(ProbeFlags::Any)?.is_none(), "all events consumed");
    println!("quickstart OK");
    Ok(())
}
