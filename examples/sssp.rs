//! Single-source shortest paths by *distributed control*: fully
//! asynchronous, barrier-free chaotic relaxation.
//!
//! Each relaxation is an active message; a handler that improves a distance
//! immediately fires relaxations for the vertex's out-edges — no levels, no
//! frontiers, no synchronization until global quiescence says no better
//! path can exist anywhere. This is the execution style the HPX-era SSSP
//! papers argue for, and the workload profile (tiny messages, deep
//! dependency chains, data-driven termination) is exactly what
//! put-with-completion plus quiescence detection serve.
//!
//! The result is verified against a sequential Dijkstra run, and the work
//! amplification (relaxations performed vs. edges Dijkstra settles) is
//! reported — the classic cost of asynchrony.
//!
//! Run with: `cargo run --release --example sssp`

use parking_lot::Mutex;
use photon::fabric::NetworkModel;
use photon::runtime::{ActionRegistry, RtConfig, RuntimeCluster};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

const RANKS: usize = 4;
const VERTS_PER_RANK: usize = 1500;
const DEGREE: usize = 6;
const INF: u64 = u64::MAX;

/// Deterministic weighted out-edges of global vertex `v`.
fn edges_of(v: usize, total: usize) -> Vec<(usize, u64)> {
    let mut rng = StdRng::seed_from_u64(0x55B ^ v as u64);
    (0..DEGREE).map(|_| (rng.gen_range(0..total), rng.gen_range(1..10u64))).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let total = RANKS * VERTS_PER_RANK;
    let dists: Arc<Vec<Mutex<Vec<u64>>>> =
        Arc::new((0..RANKS).map(|_| Mutex::new(vec![INF; VERTS_PER_RANK])).collect());
    let relaxations = Arc::new(AtomicU64::new(0));

    let mut reg = ActionRegistry::new();
    let relax_id = Arc::new(AtomicU32::new(0));
    let (d2, r2, id2) = (Arc::clone(&dists), Arc::clone(&relaxations), Arc::clone(&relax_id));
    let relax = reg.register("relax", move |ctx, payload| {
        let v = u64::from_le_bytes(payload[0..8].try_into().unwrap()) as usize;
        let cand = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        r2.fetch_add(1, Ordering::Relaxed);
        let improved = {
            let mut dist = d2[ctx.rank()].lock();
            if cand < dist[v] {
                dist[v] = cand;
                true
            } else {
                false
            }
        };
        if improved {
            // Distributed control: push better paths onward immediately.
            let gv = ctx.rank() * VERTS_PER_RANK + v;
            let id = id2.load(Ordering::Relaxed);
            for (tgt, w) in edges_of(gv, RANKS * VERTS_PER_RANK) {
                let owner = tgt / VERTS_PER_RANK;
                let mut p = [0u8; 16];
                p[0..8].copy_from_slice(&((tgt % VERTS_PER_RANK) as u64).to_le_bytes());
                p[8..16].copy_from_slice(&(cand + w).to_le_bytes());
                ctx.send_parcel(owner, id, &p).unwrap();
            }
        }
        None
    });
    relax_id.store(relax, Ordering::Relaxed);

    let cluster = RuntimeCluster::new(
        RANKS,
        NetworkModel::ib_fdr(),
        RtConfig { workers: 1, coalesce_max: 32, ..RtConfig::default() },
        reg,
    );

    // Fire the source relaxation and run to global quiescence — that's the
    // entire distributed algorithm.
    std::thread::scope(|scope| {
        for i in 0..RANKS {
            let cluster = &cluster;
            scope.spawn(move || {
                let node = cluster.node(i);
                if i == 0 {
                    let mut p = [0u8; 16];
                    p[8..16].copy_from_slice(&0u64.to_le_bytes());
                    node.send_parcel(0, relax, &p).unwrap();
                }
                node.quiescence().unwrap();
            });
        }
    });

    // --------------------- Dijkstra reference -----------------------------
    let mut ref_dist = vec![INF; total];
    ref_dist[0] = 0;
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((0u64, 0usize)));
    let mut settled_edges = 0u64;
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if d > ref_dist[v] {
            continue;
        }
        for (t, w) in edges_of(v, total) {
            settled_edges += 1;
            if d + w < ref_dist[t] {
                ref_dist[t] = d + w;
                heap.push(std::cmp::Reverse((d + w, t)));
            }
        }
    }

    let mut reached = 0usize;
    for (i, block) in dists.iter().enumerate() {
        let dist = block.lock();
        for (lv, &d) in dist.iter().enumerate() {
            assert_eq!(
                d,
                ref_dist[i * VERTS_PER_RANK + lv],
                "vertex {} wrong",
                i * VERTS_PER_RANK + lv
            );
            if d != INF {
                reached += 1;
            }
        }
    }

    let t_ns = cluster.nodes().iter().map(|n| n.photon().now().as_nanos()).max().unwrap();
    let work = relaxations.load(Ordering::Relaxed);
    println!("SSSP over {total} vertices x degree {DEGREE} on {RANKS} ranks (chaotic relaxation)");
    println!("reached {reached} vertices; virtual time {:.2} ms", t_ns as f64 / 1e6);
    println!(
        "work: {work} relaxations vs {settled_edges} Dijkstra edge scans ({:.2}x amplification)",
        work as f64 / settled_edges as f64
    );
    cluster.shutdown();
    println!("sssp OK (matches Dijkstra)");
    Ok(())
}
