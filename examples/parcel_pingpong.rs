//! Parcel ping-pong: the runtime-system workload Photon was built for.
//!
//! Two nodes bounce an active message back and forth `ROUNDS` times; each
//! bounce decrements a TTL carried in the payload, and the final handler
//! sets a future on the originating rank. Reports parcels/s in virtual time
//! and the per-hop latency.
//!
//! Run with: `cargo run --example parcel_pingpong`

use photon::fabric::NetworkModel;
use photon::runtime::{ActionRegistry, RtConfig, RuntimeCluster};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

const ROUNDS: u64 = 2000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut reg = ActionRegistry::new();
    // Self-referential action id: the handler forwards to the other rank.
    let bounce_id = Arc::new(AtomicU32::new(0));
    let bounce_id2 = Arc::clone(&bounce_id);
    let bounce = reg.register("bounce", move |ctx, payload| {
        let ttl = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        if ttl == 0 {
            // Final hop: answer the continuation with the hop count.
            return Some(ROUNDS.to_le_bytes().to_vec());
        }
        let other = 1 - ctx.rank();
        // Delegate the reply obligation along with the work.
        ctx.send_parcel_with_cont(
            other,
            bounce_id2.load(Ordering::Relaxed),
            &(ttl - 1).to_le_bytes(),
            ctx.cont(),
        )
        .expect("forward");
        None
    });
    bounce_id.store(bounce, Ordering::Relaxed);

    let cluster = RuntimeCluster::new(2, NetworkModel::ib_fdr(), RtConfig::default(), reg);
    let n0 = cluster.node(0);

    // The last bounce runs wherever TTL hits zero; give it a continuation
    // back to rank 0. TTL is even so it ends on rank 0 -> local set.
    let (lco, fut) = n0.new_future();
    n0.send_parcel_with_cont(1, bounce, &(ROUNDS - 1).to_le_bytes(), lco)?;
    let hops = u64::from_le_bytes(fut.wait().try_into().unwrap());
    assert_eq!(hops, ROUNDS);

    let t_ns = cluster.nodes().iter().map(|n| n.photon().now().as_nanos()).max().unwrap();
    println!("{ROUNDS} parcel hops in {:.1} virtual us", t_ns as f64 / 1e3);
    println!("per-hop latency: {:.2} us", t_ns as f64 / 1e3 / ROUNDS as f64);
    println!(
        "parcel rate: {:.2} Kparcels/s (latency-bound, window=1)",
        ROUNDS as f64 / (t_ns as f64 / 1e9) / 1e3
    );
    println!("rank0 stats: {:?}", n0.stats());
    cluster.shutdown();
    println!("parcel_pingpong OK");
    Ok(())
}
