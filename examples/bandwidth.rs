//! Bandwidth sweep: one-sided puts vs two-sided send/recv across message
//! sizes, printed as a small table (a command-line version of figure E2).
//!
//! Run with: `cargo run --release --example bandwidth`

use photon::core::{PhotonCluster, PhotonConfig};
use photon::fabric::NetworkModel;
use photon::msg::{MsgCluster, MsgConfig};

fn photon_put_bw(size: usize, count: usize) -> f64 {
    let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default());
    let (p0, p1) = (c.rank(0), c.rank(1));
    let src = p0.register_buffer(size).unwrap();
    let dst = p1.register_buffer(size).unwrap();
    let d = dst.descriptor();
    c.reset_time();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..count as u64 {
                p0.put_with_completion(1, &src, 0, size, &d, 0, i, i).unwrap();
            }
        });
        s.spawn(|| {
            for _ in 0..count {
                p1.wait_completion_matching(photon::core::ProbeFlags::Remote).unwrap();
            }
        });
    });
    (size * count) as f64 / (p1.now().as_nanos() as f64 / 1e9)
}

fn baseline_bw(size: usize, count: usize) -> f64 {
    let c = MsgCluster::new(2, NetworkModel::ib_fdr(), MsgConfig::default());
    let (e0, e1) = (c.rank(0), c.rank(1));
    let sbuf = e0.register_buffer(size).unwrap();
    let rbuf = e1.register_buffer(size).unwrap();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..count as u64 {
                e0.send_from(1, &sbuf, 0, size, i).unwrap();
            }
        });
        s.spawn(|| {
            for i in 0..count as u64 {
                e1.recv_into(&rbuf, 0, size, Some(0), Some(i)).unwrap();
            }
        });
    });
    (size * count) as f64 / (c.rank(1).now().as_nanos() as f64 / 1e9)
}

fn main() {
    println!("bandwidth over modeled FDR InfiniBand (7.0 GB/s line rate)\n");
    println!("{:>8}  {:>12}  {:>12}", "size", "put GB/s", "send GB/s");
    for exp in [10usize, 12, 14, 16, 18, 20, 22] {
        let size = 1usize << exp;
        let count = ((32 << 20) / size).clamp(16, 2048);
        let put = photon_put_bw(size, count) / 1e9;
        let two = baseline_bw(size, count) / 1e9;
        let label = if size >= 1 << 20 {
            format!("{}MiB", size >> 20)
        } else {
            format!("{}KiB", size >> 10)
        };
        println!("{label:>8}  {put:>12.2}  {two:>12.2}");
    }
    println!("\nbandwidth OK");
}
