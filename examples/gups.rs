//! GUPS — random access updates through parcels over a PGAS table.
//!
//! The HPC-Challenge RandomAccess pattern, the canonical irregular workload
//! that motivates message-driven runtimes: every rank fires xor-updates at
//! random locations of a distributed table; owners apply them when the
//! update parcels arrive. Verifies the xor checksum at the end (updates are
//! applied exactly once because each element is touched only by owner-side
//! handlers).
//!
//! Run with: `cargo run --release --example gups`

use photon::fabric::NetworkModel;
use photon::runtime::{ActionRegistry, GlobalArray, RtConfig, RuntimeCluster};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

const RANKS: usize = 4;
const ELEMS_PER_RANK: usize = 1 << 14;
const UPDATES_PER_RANK: usize = 10_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut reg = ActionRegistry::new();
    let table: Arc<OnceLock<Arc<GlobalArray>>> = Arc::new(OnceLock::new());
    let applied = Arc::new(AtomicU64::new(0));
    let (table2, applied2) = (Arc::clone(&table), Arc::clone(&applied));
    let update = reg.register("xor-update", move |ctx, payload| {
        let idx = u64::from_le_bytes(payload[0..8].try_into().unwrap()) as usize;
        let val = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        let arr = table2.get().expect("table installed");
        let (owner, off) = arr.locate(idx);
        assert_eq!(owner, ctx.rank(), "updates are routed to the owner");
        let block = arr.local_block(owner);
        block.write_u64(off, block.read_u64(off) ^ val);
        applied2.fetch_add(1, Ordering::Relaxed);
        None
    });

    let cluster = RuntimeCluster::new(
        RANKS,
        NetworkModel::ib_fdr(),
        RtConfig { workers: 1, ..RtConfig::default() },
        reg,
    );
    let arr = cluster.alloc_global_array(ELEMS_PER_RANK)?;
    table.set(Arc::clone(&arr)).expect("set once");

    // Fire updates from every rank; remember the expected checksum.
    let mut expected_xor = 0u64;
    let mut rngs: Vec<StdRng> = (0..RANKS).map(|i| StdRng::seed_from_u64(42 + i as u64)).collect();
    let mut shots: Vec<Vec<(usize, u64)>> = vec![Vec::new(); RANKS];
    for (i, rng) in rngs.iter_mut().enumerate() {
        for _ in 0..UPDATES_PER_RANK {
            let idx = rng.gen_range(0..arr.len());
            let val: u64 = rng.gen();
            expected_xor ^= val;
            shots[i].push((idx, val));
        }
    }
    std::thread::scope(|s| {
        for (i, list) in shots.iter().enumerate() {
            let cluster = &cluster;
            s.spawn(move || {
                let node = cluster.node(i);
                for &(idx, val) in list {
                    let (owner, _) = node_table_locate(idx);
                    let mut payload = [0u8; 16];
                    payload[0..8].copy_from_slice(&(idx as u64).to_le_bytes());
                    payload[8..16].copy_from_slice(&val.to_le_bytes());
                    node.send_parcel(owner, update, &payload).unwrap();
                }
            });
        }
    });

    // Wait for all updates to land.
    let total = (RANKS * UPDATES_PER_RANK) as u64;
    while applied.load(Ordering::Relaxed) < total {
        std::thread::yield_now();
    }

    // Verify: xor over the whole table equals xor over all update values
    // (table starts zeroed; xor is commutative and associative).
    let mut got_xor = 0u64;
    for r in 0..RANKS {
        let block = arr.local_block(r);
        for e in 0..ELEMS_PER_RANK {
            got_xor ^= block.read_u64(e * 8);
        }
    }
    assert_eq!(got_xor, expected_xor, "all updates applied exactly once");

    let t_ns = cluster.nodes().iter().map(|n| n.photon().now().as_nanos()).max().unwrap();
    println!("{} updates over {} ranks in {:.1} virtual ms", total, RANKS, t_ns as f64 / 1e6);
    println!(
        "rate: {:.4} GUPS ({:.1} Mupdates/s)",
        total as f64 / (t_ns as f64 / 1e9) / 1e9,
        total as f64 / (t_ns as f64 / 1e9) / 1e6
    );
    cluster.shutdown();
    println!("gups OK (checksum verified)");
    Ok(())
}

/// Owner of element `idx` under the same block distribution the array uses.
fn node_table_locate(idx: usize) -> (usize, usize) {
    (idx / ELEMS_PER_RANK, idx % ELEMS_PER_RANK)
}
