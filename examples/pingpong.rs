//! Multi-process ping-pong + windowed puts over the sockets backend.
//!
//! This example is the `photon-launch` smoke workload: run it as a real
//! multi-process cluster on localhost —
//!
//! ```text
//! cargo build --example pingpong
//! cargo run --bin photon-launch -- -n 4 -- target/debug/examples/pingpong
//! ```
//!
//! Each rank joins the job through the launcher's environment contract
//! (`PHOTON_RANK`/`PHOTON_BOOTSTRAP`), then runs two phases over real UDP
//! sockets: PWC ping-pong in rank pairs, and a ring of windowed
//! put-with-completions. It prints `PINGPONG OK` / `WINDOWED-PUT OK`
//! markers (grepped by CI) and exits non-zero on any failure.

use photon::core::buffers::BufferDescriptor;
use photon::core::{Completion, PhotonConfig, PhotonProcess, ProbeFlags};
use std::time::Instant;

/// Remote rid carrying a buffer descriptor during setup.
const RID_DESC: u64 = 1_000_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iters = 200u64;
    let mut ops = 2_000u64;
    let mut window = 16usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args[i + 1].parse().expect("--iters takes a count");
                i += 2;
            }
            "--ops" => {
                ops = args[i + 1].parse().expect("--ops takes a count");
                i += 2;
            }
            "--window" => {
                window = args[i + 1].parse().expect("--window takes a count");
                i += 2;
            }
            other => {
                eprintln!("unknown arg: {other} (try --iters/--ops/--window)");
                std::process::exit(2);
            }
        }
    }

    let me = PhotonProcess::from_env(PhotonConfig::default()).unwrap_or_else(|e| {
        eprintln!("pingpong: join failed ({e}); run me under photon-launch");
        std::process::exit(1);
    });
    let (rank, n) = (me.rank(), me.n());
    let p = me.photon();
    assert!(n >= 2, "pingpong needs at least 2 ranks");

    // Phase 1 — PWC ping-pong in pairs (rank 2k <-> 2k+1). With odd n the
    // last rank sits this phase out at the barrier.
    let buf = p.register_buffer(4096).unwrap();
    let partner = rank ^ 1;
    if partner < n {
        p.send(partner, &buf.descriptor().to_bytes(), RID_DESC).unwrap();
        let c = p.wait_completion_from(partner).unwrap();
        assert_eq!(c.rid, RID_DESC);
        let dst = BufferDescriptor::from_bytes(&c.payload.unwrap());
        let t0 = Instant::now();
        for i in 0..iters {
            if rank % 2 == 0 {
                p.put_with_completion(partner, &buf, 0, 8, &dst, 0, i, i).unwrap();
                p.wait_local(i).unwrap();
                p.wait_completion_from(partner).unwrap();
            } else {
                p.wait_completion_from(partner).unwrap();
                p.put_with_completion(partner, &buf, 0, 8, &dst, 0, i, i).unwrap();
                p.wait_local(i).unwrap();
            }
        }
        let half_rtt_ns = t0.elapsed().as_nanos() as u64 / (2 * iters);
        println!(
            "PINGPONG OK rank={rank} partner={partner} iters={iters} half_rtt_us={:.1}",
            half_rtt_ns as f64 / 1000.0
        );
    }
    p.barrier().unwrap();

    // Phase 2 — ring of windowed puts: every rank keeps `window` 8-byte
    // PWCs in flight toward the next rank while draining the remote
    // completions arriving from the previous one (which is what returns
    // that producer's ring credits).
    let to = (rank + 1) % n;
    let from = (rank + n - 1) % n;
    p.send(from, &buf.descriptor().to_bytes(), RID_DESC + 1).unwrap();
    let c = p.wait_completion_from(to).unwrap();
    assert_eq!(c.rid, RID_DESC + 1);
    let dst = BufferDescriptor::from_bytes(&c.payload.unwrap());

    let t0 = Instant::now();
    let mut evs: Vec<Completion> = Vec::with_capacity(128);
    let (mut posted, mut done, mut drained) = (0u64, 0u64, 0u64);
    let mut inflight = 0usize;
    while done < ops || drained < ops {
        while inflight < window && posted < ops {
            if p.try_put_with_completion(to, &buf, 0, 8, &dst, 0, posted, posted).unwrap() {
                posted += 1;
                inflight += 1;
            } else {
                break; // out of ring credits until `from`-side probes catch up
            }
        }
        evs.clear();
        drained += p.poll_completions(ProbeFlags::Remote, &mut evs, 64).unwrap() as u64;
        evs.clear();
        let k = p.poll_completions(ProbeFlags::Local, &mut evs, 64).unwrap();
        done += k as u64;
        inflight -= k;
    }
    let rate = ops as f64 / t0.elapsed().as_secs_f64() / 1.0e6;
    println!("WINDOWED-PUT OK rank={rank} ops={ops} window={window} mops={rate:.3}");

    p.barrier().unwrap();
    println!("ALL DONE rank={rank} n={n}");
}
