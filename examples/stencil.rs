//! 1-D decomposed Jacobi heat diffusion with one-sided halo exchange.
//!
//! Each rank owns a band of rows; per iteration it puts its boundary rows
//! directly into its neighbours' halo slots (put-with-completion into
//! pre-registered buffers: the natural Photon pattern), waits for both
//! neighbour halos, relaxes, and barriers. Numeric correctness is verified
//! against a single-rank reference run.
//!
//! Run with: `cargo run --release --example stencil`

use photon::core::{PhotonBuffer, PhotonCluster, PhotonConfig};
use photon::fabric::NetworkModel;

const RANKS: usize = 4;
const ROWS_PER_RANK: usize = 32;
const COLS: usize = 64;
const ITERS: usize = 50;

fn idx(r: usize, c: usize) -> usize {
    (r * COLS + c) * 8
}

fn read_grid(buf: &PhotonBuffer, rows: usize) -> Vec<f64> {
    (0..rows * COLS).map(|k| f64::from_bits(buf.read_u64(k * 8))).collect()
}

/// One Jacobi sweep over rows 1..=interior of a (interior+2)-row grid with
/// fixed top/bottom boundary conditions held in the halo rows.
fn relax(buf: &PhotonBuffer, interior: usize) {
    let old = read_grid(buf, interior + 2);
    for r in 1..=interior {
        for c in 0..COLS {
            let left = old[r * COLS + c.saturating_sub(1)];
            let right = old[r * COLS + (c + 1).min(COLS - 1)];
            let up = old[(r - 1) * COLS + c];
            let down = old[(r + 1) * COLS + c];
            buf.write_u64(idx(r, c), (0.25 * (left + right + up + down)).to_bits());
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------- distributed run ------------------------------------
    let cfg = PhotonConfig::builder().eager_threshold(0).build()?;
    let cluster = PhotonCluster::new(RANKS, NetworkModel::ib_fdr(), cfg);
    let grids: Vec<PhotonBuffer> = (0..RANKS)
        .map(|i| cluster.rank(i).register_buffer((ROWS_PER_RANK + 2) * COLS * 8).unwrap())
        .collect();
    let descs: Vec<_> = grids.iter().map(|g| g.descriptor()).collect();

    // Initial condition: hot edge on rank 0's top halo (fixed boundary).
    for c in 0..COLS {
        grids[0].write_u64(idx(0, c), 100.0f64.to_bits());
    }

    std::thread::scope(|s| {
        for i in 0..RANKS {
            let cluster = &cluster;
            let grids = &grids;
            let descs = &descs;
            s.spawn(move || {
                let p = cluster.rank(i);
                let g = &grids[i];
                let row_bytes = COLS * 8;
                for k in 0..ITERS as u64 {
                    // Interior boundary rows travel to the neighbours'
                    // halo slots (non-periodic: edges skip).
                    let mut expect = 0;
                    if i > 0 {
                        p.put_with_completion(
                            i - 1,
                            g,
                            row_bytes,
                            row_bytes,
                            &descs[i - 1],
                            (ROWS_PER_RANK + 1) * row_bytes,
                            2 * k,
                            k,
                        )
                        .unwrap();
                        expect += 1;
                    }
                    if i + 1 < RANKS {
                        p.put_with_completion(
                            i + 1,
                            g,
                            ROWS_PER_RANK * row_bytes,
                            row_bytes,
                            &descs[i + 1],
                            0,
                            2 * k + 1,
                            k,
                        )
                        .unwrap();
                        expect += 1;
                    }
                    for _ in 0..expect {
                        p.wait_completion_matching(photon::core::ProbeFlags::Remote).unwrap();
                    }
                    relax(g, ROWS_PER_RANK);
                    p.elapse((ROWS_PER_RANK * COLS) as u64); // modeled FLOPs
                    p.barrier().unwrap();
                }
            });
        }
    });

    // ---------------- single-rank reference ------------------------------
    let reference = PhotonCluster::new(1, NetworkModel::ideal(), PhotonConfig::default());
    let total_rows = RANKS * ROWS_PER_RANK;
    let ref_grid = reference.rank(0).register_buffer((total_rows + 2) * COLS * 8)?;
    for c in 0..COLS {
        ref_grid.write_u64(idx(0, c), 100.0f64.to_bits());
    }
    for _ in 0..ITERS {
        relax(&ref_grid, total_rows);
    }

    // ---------------- compare --------------------------------------------
    let mut max_err = 0.0f64;
    for (i, grid) in grids.iter().enumerate() {
        for r in 0..ROWS_PER_RANK {
            for c in 0..COLS {
                let dist = f64::from_bits(grid.read_u64(idx(r + 1, c)));
                let global_r = i * ROWS_PER_RANK + r + 1;
                let refv = f64::from_bits(ref_grid.read_u64(idx(global_r, c)));
                max_err = max_err.max((dist - refv).abs());
            }
        }
    }
    assert!(max_err < 1e-12, "distributed result diverged: max_err={max_err}");

    let t_ns = cluster.ranks().iter().map(|p| p.now().as_nanos()).max().unwrap();
    println!(
        "{ITERS} Jacobi iterations over {RANKS} ranks ({} x {COLS} cells/rank)",
        ROWS_PER_RANK
    );
    println!(
        "virtual time: {:.1} us ({:.2} us/iter)",
        t_ns as f64 / 1e3,
        t_ns as f64 / 1e3 / ITERS as f64
    );
    println!("max |distributed - reference| = {max_err:.2e}");
    println!("stencil OK");
    Ok(())
}
