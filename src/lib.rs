//! # photon — umbrella crate
//!
//! Re-exports the whole photon-rs stack under one roof so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`fabric`] — the simulated RDMA substrate (queue pairs, registration,
//!   completion queues, LogGP network model);
//! * [`core`] — the Photon middleware itself (put/get-with-completion,
//!   ledgers, eager buffers, rendezvous, collectives);
//! * [`msg`] — a two-sided tag-matched messaging baseline (MPI-like);
//! * [`runtime`] — an HPX-5-lite parcel runtime driving Photon.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use photon_core as core;
pub use photon_fabric as fabric;
pub use photon_msg as msg;
pub use photon_runtime as runtime;
